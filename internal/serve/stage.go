package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"time"

	"offloadnn/internal/dnn"
	"offloadnn/internal/exec"
)

// CodeDeadlineHop is the 504 code for a split-path request whose
// deadline budget ran out mid-pipeline: the frame was admitted and at
// least the head segment ran, but a later hop (transfer included) left
// no budget, so the relay shed it instead of finishing work the client
// will never accept. Distinct from CodeDeadline so clients can tell a
// single-node miss from a multi-hop one.
const CodeDeadlineHop = "deadline_exceeded@hop"

// maxStageBody bounds a relayed activation envelope: manifest plus a
// ~1M-element float64 activation, far beyond any boundary this model
// family produces.
const maxStageBody = 8 << 20

// writeInferError maps an execution-backend error onto the unified
// error envelope. deadlineCode is the 504 code lateness maps to —
// CodeDeadline on a whole path, CodeDeadlineHop inside a split
// pipeline.
func (s *Server) writeInferError(w http.ResponseWriter, err error, deadlineCode string) {
	switch {
	case errors.Is(err, exec.ErrBadInput):
		writeError(w, http.StatusBadRequest, CodeInvalidRequest, "%v", err)
	case errors.Is(err, exec.ErrLate):
		s.stats.noteShed(s.cfg.Now())
		writeError(w, http.StatusGatewayTimeout, deadlineCode, "%v", err)
	case errors.Is(err, exec.ErrQueueFull):
		s.stats.noteShed(s.cfg.Now())
		w.Header().Set("Retry-After", retryAfter(s.cfg.Debounce))
		writeError(w, http.StatusServiceUnavailable, CodeOverload, "%v", err)
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		s.stats.aborted.Add(1)
		w.WriteHeader(499)
	default:
		// ErrNoModel/ErrReleased mean the request raced an epoch swap;
		// the client retries against the new epoch like any backend
		// failure.
		writeError(w, http.StatusInternalServerError, CodeBackend, "%v", err)
	}
}

// handleSplitOffload serves POST /v1/offload for a task this node heads
// a split pipeline for: gate at the admitted rate, run the head
// segment, then forward the boundary activation to the next hop with
// the remaining deadline budget and relay the tail's verdict back.
func (s *Server) handleSplitOffload(w http.ResponseWriter, r *http.Request, req OffloadRequest, sp SegmentSpec, gate *Gate) {
	if r.Context().Err() != nil {
		s.stats.aborted.Add(1)
		w.WriteHeader(499)
		return
	}
	if gate == nil {
		s.stats.recordReject(req.Task)
		w.Header().Set("Retry-After", retryAfter(s.cfg.Debounce))
		writeError(w, http.StatusTooManyRequests, CodeNotAdmitted, "task %q split head has no gate yet", req.Task)
		return
	}
	ok, wait := gate.Allow()
	if !ok {
		s.stats.recordReject(req.Task)
		w.Header().Set("Retry-After", retryAfter(wait))
		writeError(w, http.StatusTooManyRequests, CodeOverRate,
			"task %q over its admitted rate %.3g req/s", req.Task, gate.Rate())
		return
	}
	s.stats.recordSplitAdmit(req.Task)
	var epoch uint64
	if ep := s.resolver.Current(); ep != nil {
		epoch = ep.N
	}
	resp := OffloadResponse{
		Task:         req.Task,
		Epoch:        epoch,
		AdmittedRate: sp.Rate,
		Path:         sp.Path,
		DNN:          sp.DNN,
	}
	if len(req.Input) == 0 {
		// Admission probe: the token is spent, report the planned split
		// serving parameters.
		writeJSON(w, http.StatusOK, resp)
		return
	}
	// Deadline budget: the split plan's end-to-end budget by default, a
	// positive DeadlineMS overrides it, a negative one opts out.
	var budget time.Duration
	switch {
	case req.DeadlineMS > 0:
		budget = time.Duration(req.DeadlineMS * float64(time.Millisecond))
	case req.DeadlineMS < 0:
		budget = 0
	default:
		budget = time.Duration(sp.BudgetMS * float64(time.Millisecond))
	}
	start := s.cfg.Now()
	var deadline time.Time
	if budget > 0 {
		deadline = start.Add(budget)
		resp.DeadlineMS = float64(budget) / float64(time.Millisecond)
	}
	out, err := s.backend.Infer(r.Context(), exec.Request{TaskID: req.Task, Input: req.Input, FromStage: 0, Deadline: deadline})
	if err != nil {
		s.writeInferError(w, err, CodeDeadline)
		return
	}
	s.stats.recordInfer(req.Task, out.Latency.Seconds())
	s.stats.recordHop(out.Latency.Seconds())
	hopLat := float64(out.Latency) / float64(time.Millisecond)
	resp.BatchSize = out.BatchSize
	resp.Simulated = out.Simulated
	if out.Logits != nil || out.Simulated {
		// A cost-model backend produces no activation to forward, and a
		// single-segment pipeline's head is its tail: answer directly.
		resp.MeasuredLatencyMS = hopLat
		if out.Logits != nil {
			resp.Logits = out.Logits
			am := out.Argmax
			resp.Argmax = &am
		}
		resp.Hops = []dnn.ActivationHop{{Node: s.cfg.Node, LatencyMS: hopLat}}
		s.stats.latency.Add(out.Latency.Seconds())
		writeJSON(w, http.StatusOK, resp)
		return
	}
	man := dnn.ActivationManifest{
		Task:     req.Task,
		Path:     sp.Path,
		From:     sp.To,
		Shape:    out.ActShape,
		BudgetMS: resp.DeadlineMS,
		Hops: []dnn.ActivationHop{{
			Node:            s.cfg.Node,
			LatencyMS:       hopLat,
			ActivationBytes: len(out.Activation) * 8,
		}},
	}
	if budget > 0 {
		man.RemainingMS = float64(deadline.Sub(s.cfg.Now())) / float64(time.Millisecond)
		if man.RemainingMS <= 0 {
			s.stats.noteShed(s.cfg.Now())
			writeError(w, http.StatusGatewayTimeout, CodeDeadlineHop,
				"task %q: deadline budget exhausted after head segment", req.Task)
			return
		}
	}
	status, body, err := s.forwardActivation(r.Context(), sp, man, out.Activation)
	if err != nil {
		writeError(w, http.StatusBadGateway, CodeBackend, "task %q: relay to %s: %v", req.Task, sp.NextNode, err)
		return
	}
	if status != http.StatusOK {
		// Relay the downstream verdict (a hop-deadline 504, a shed 503)
		// unchanged; the codes are already from this API's vocabulary.
		relayBody(w, status, body)
		return
	}
	var tail OffloadResponse
	if err := json.Unmarshal(body, &tail); err != nil {
		writeError(w, http.StatusBadGateway, CodeBackend, "task %q: malformed tail response: %v", req.Task, err)
		return
	}
	resp.MeasuredLatencyMS = float64(s.cfg.Now().Sub(start)) / float64(time.Millisecond)
	resp.BatchSize = tail.BatchSize
	resp.Simulated = tail.Simulated
	resp.Logits = tail.Logits
	resp.Argmax = tail.Argmax
	resp.Hops = tail.Hops
	s.stats.latency.Add(resp.MeasuredLatencyMS / 1e3)
	writeJSON(w, http.StatusOK, resp)
}

// handleStage serves POST /v1/stage: one boundary-activation handoff
// inside a split pipeline. The body is an activation envelope
// (dnn.EncodeActivation); the response is either the tail's
// OffloadResponse (JSON) or a relayed error envelope. Stage traffic is
// not gated — the head already spent the pipeline's rate token.
func (s *Server) handleStage(w http.ResponseWriter, r *http.Request) {
	man, act, err := dnn.DecodeActivation(http.MaxBytesReader(w, r.Body, maxStageBody))
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeInvalidRequest, "%v", err)
		return
	}
	sp, ok := s.segTable().at(man.Task, man.From)
	if !ok {
		writeError(w, http.StatusNotFound, CodeUnknownTask,
			"no segment installed for task %q entering stage %d", man.Task, man.From)
		return
	}
	if man.Path != sp.Path {
		writeError(w, http.StatusBadRequest, CodeInvalidRequest,
			"activation is for path %q, segment installed for %q", man.Path, sp.Path)
		return
	}
	if man.RemainingMS < 0 {
		s.stats.noteShed(s.cfg.Now())
		writeError(w, http.StatusGatewayTimeout, CodeDeadlineHop,
			"task %q: deadline budget exhausted entering hop %d", man.Task, sp.Hop)
		return
	}
	start := s.cfg.Now()
	var deadline time.Time
	if man.RemainingMS > 0 {
		// The sender's snapshot is trusted as-is: transfer time between
		// the snapshot and this arrival is absorbed by the next
		// remaining-budget computation, not double-counted here.
		deadline = start.Add(time.Duration(man.RemainingMS * float64(time.Millisecond)))
	}
	out, err := s.backend.Infer(r.Context(), exec.Request{TaskID: man.Task, Input: act, FromStage: man.From, Deadline: deadline})
	if err != nil {
		s.writeInferError(w, err, CodeDeadlineHop)
		return
	}
	s.stats.recordHop(out.Latency.Seconds())
	hopLat := float64(out.Latency) / float64(time.Millisecond)
	if out.Logits != nil || out.Simulated || sp.TailSeg() {
		var epoch uint64
		if ep := s.resolver.Current(); ep != nil {
			epoch = ep.N
		}
		resp := OffloadResponse{
			Task:              man.Task,
			Epoch:             epoch,
			AdmittedRate:      sp.Rate,
			Path:              sp.Path,
			DNN:               sp.DNN,
			MeasuredLatencyMS: hopLat,
			BatchSize:         out.BatchSize,
			Simulated:         out.Simulated,
			DeadlineMS:        man.BudgetMS,
			Hops:              append(man.Hops, dnn.ActivationHop{Node: s.cfg.Node, LatencyMS: hopLat}),
		}
		if out.Logits != nil {
			resp.Logits = out.Logits
			am := out.Argmax
			resp.Argmax = &am
		}
		writeJSON(w, http.StatusOK, resp)
		return
	}
	// Middle hop: account this segment and forward the next boundary.
	next := dnn.ActivationManifest{
		Task:     man.Task,
		Path:     sp.Path,
		From:     sp.To,
		Shape:    out.ActShape,
		BudgetMS: man.BudgetMS,
		Hops: append(man.Hops, dnn.ActivationHop{
			Node:            s.cfg.Node,
			LatencyMS:       hopLat,
			ActivationBytes: len(out.Activation) * 8,
		}),
	}
	if man.RemainingMS > 0 {
		next.RemainingMS = float64(deadline.Sub(s.cfg.Now())) / float64(time.Millisecond)
		if next.RemainingMS <= 0 {
			s.stats.noteShed(s.cfg.Now())
			writeError(w, http.StatusGatewayTimeout, CodeDeadlineHop,
				"task %q: deadline budget exhausted after hop %d", man.Task, sp.Hop)
			return
		}
	}
	status, body, err := s.forwardActivation(r.Context(), sp, next, out.Activation)
	if err != nil {
		writeError(w, http.StatusBadGateway, CodeBackend, "task %q: relay to %s: %v", man.Task, sp.NextNode, err)
		return
	}
	relayBody(w, status, body)
}

// forwardActivation encodes the envelope and posts it to the segment's
// next hop, returning the downstream status and body.
func (s *Server) forwardActivation(ctx context.Context, sp SegmentSpec, man dnn.ActivationManifest, act []float64) (int, []byte, error) {
	var buf bytes.Buffer
	if err := dnn.EncodeActivation(&buf, man, act); err != nil {
		return 0, nil, err
	}
	s.stats.activationBytes.Add(uint64(buf.Len()))
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, sp.Next+"/v1/stage", bytes.NewReader(buf.Bytes()))
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	res, err := s.stageClient.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer res.Body.Close()
	body, err := io.ReadAll(io.LimitReader(res.Body, maxStageBody))
	if err != nil {
		return 0, nil, err
	}
	return res.StatusCode, body, nil
}

// relayBody writes a downstream hop's response through unchanged.
func relayBody(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body)
}
