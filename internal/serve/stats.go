package serve

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"offloadnn/internal/core"
	"offloadnn/internal/metrics"
)

// tierSlots is the size of the per-tier stats arrays, indexed by
// core.Tier (TierAuto..TierApprox).
const tierSlots = int(core.TierApprox) + 1

// taskCounters tallies the offload verdicts of one task.
type taskCounters struct {
	admitted atomic.Uint64
	rejected atomic.Uint64
	// infer holds the task's measured inference latencies (seconds);
	// allocated on the first executed offload, nil for predict-only
	// traffic.
	infer atomic.Pointer[metrics.Window]
}

// Stats aggregates the daemon's live counters: request totals, per-task
// admit/reject verdicts, solve bookkeeping and the end-to-end latency
// window backing the exported p50/p95/p99.
type Stats struct {
	start          time.Time
	requests       atomic.Uint64
	aborted        atomic.Uint64
	solves         atomic.Uint64
	solveErrors    atomic.Uint64
	solvePanics    atomic.Uint64
	lastSolveNanos atomic.Int64
	// Per-tier solve bookkeeping, indexed by core.Tier: how many epochs
	// each solver tier produced and the duration of its most recent one.
	tierSolves    [tierSlots]atomic.Uint64
	tierLastNanos [tierSlots]atomic.Int64
	latency        *metrics.Window
	window         int
	// earlySheds counts requests the serve layer shed before they reached
	// the backend queue (overload fast path: predicted latency exceeds
	// the deadline budget while the runtime is under deadline pressure).
	earlySheds atomic.Uint64
	// hopLatency windows the per-hop execution latencies of split-path
	// segments this node ran (head or relay), backing
	// offloadnn_hop_latency_seconds.
	hopLatency *metrics.Window
	// activationBytes totals the boundary-activation envelope bytes this
	// node forwarded to next hops.
	activationBytes atomic.Uint64

	mu           sync.Mutex
	perTask      map[string]*taskCounters
	lastSolveErr string
	// shedTimes is a bounded ring of recent backend shed instants (late
	// and queue-full verdicts) — the overload signal /healthz degrades
	// on while sheds inside Config.OverloadWindow stay ≥ OverloadAfter.
	shedTimes []time.Time
	shedHead  int
}

// shedRingCap bounds the overload ring; sheds beyond it inside one
// window saturate the signal, which is all the health coupling needs.
const shedRingCap = 256

// noteShed records one backend shed instant into the overload ring.
func (s *Stats) noteShed(t time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.shedTimes) < shedRingCap {
		s.shedTimes = append(s.shedTimes, t)
		return
	}
	s.shedTimes[s.shedHead] = t
	s.shedHead = (s.shedHead + 1) % shedRingCap
}

// RecentSheds counts backend sheds younger than window at now.
func (s *Stats) RecentSheds(window time.Duration, now time.Time) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	cutoff := now.Add(-window)
	n := 0
	for _, t := range s.shedTimes {
		if t.After(cutoff) {
			n++
		}
	}
	return n
}

// EarlySheds returns how many requests the serve layer shed before the
// backend queue (counted under the "late" shed reason on /metrics).
func (s *Stats) EarlySheds() uint64 { return s.earlySheds.Load() }

func newStats(window int, start time.Time) *Stats {
	return &Stats{
		start:      start,
		latency:    metrics.NewWindow(window),
		hopLatency: metrics.NewWindow(window),
		window:     window,
		perTask:    make(map[string]*taskCounters),
	}
}

func (s *Stats) task(id string) *taskCounters {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.perTask[id]
	if !ok {
		c = &taskCounters{}
		s.perTask[id] = c
	}
	return c
}

// recordAdmit counts an admitted offload and folds its end-to-end
// latency (seconds) into the quantile window.
func (s *Stats) recordAdmit(id string, latencySeconds float64) {
	s.task(id).admitted.Add(1)
	s.latency.Add(latencySeconds)
}

// recordInfer folds one executed offload's measured latency (seconds)
// into the task's inference-quantile window.
func (s *Stats) recordInfer(id string, latencySeconds float64) {
	c := s.task(id)
	w := c.infer.Load()
	if w == nil {
		fresh := metrics.NewWindow(s.window)
		if c.infer.CompareAndSwap(nil, fresh) {
			w = fresh
		} else {
			w = c.infer.Load()
		}
	}
	w.Add(latencySeconds)
}

// InferWindow returns the task's measured inference-latency window, nil
// when the task has executed no offloads.
func (s *Stats) InferWindow(id string) *metrics.Window {
	s.mu.Lock()
	c, ok := s.perTask[id]
	s.mu.Unlock()
	if !ok {
		return nil
	}
	return c.infer.Load()
}

// recordSplitAdmit counts an offload admitted by a split-pipeline head
// gate. Unlike recordAdmit there is no plan-time latency to fold into
// the end-to-end window here — the measured pipeline latency is added
// when the tail's verdict comes back.
func (s *Stats) recordSplitAdmit(id string) {
	s.task(id).admitted.Add(1)
}

// recordHop folds one split-segment execution latency (seconds) into
// the hop-latency window.
func (s *Stats) recordHop(latencySeconds float64) {
	s.hopLatency.Add(latencySeconds)
}

// HopLatency exposes the split-segment hop latency window (seconds).
func (s *Stats) HopLatency() *metrics.Window { return s.hopLatency }

// ActivationBytes returns the total boundary-activation bytes this node
// forwarded to next hops.
func (s *Stats) ActivationBytes() uint64 { return s.activationBytes.Load() }

// recordReject counts a rate-rejected offload.
func (s *Stats) recordReject(id string) {
	s.task(id).rejected.Add(1)
}

// taskIDs returns the IDs with counters, sorted for deterministic
// rendering.
func (s *Stats) taskIDs() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := make([]string, 0, len(s.perTask))
	for id := range s.perTask {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// setLastSolveError records (or, on nil, clears) the most recent solve
// failure for /healthz.
func (s *Stats) setLastSolveError(err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err == nil {
		s.lastSolveErr = ""
		return
	}
	s.lastSolveErr = err.Error()
}

// LastSolveError returns the most recent solve failure, empty after a
// success.
func (s *Stats) LastSolveError() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastSolveErr
}

// Requests returns the total offload requests seen.
func (s *Stats) Requests() uint64 { return s.requests.Load() }

// Aborted returns the offload requests whose client disconnected before
// gate work; they are counted here instead of consuming tokens.
func (s *Stats) Aborted() uint64 { return s.aborted.Load() }

// Solves returns the number of published epochs.
func (s *Stats) Solves() uint64 { return s.solves.Load() }

// SolveErrors returns the number of failed re-solves.
func (s *Stats) SolveErrors() uint64 { return s.solveErrors.Load() }

// SolvePanics returns how many solver panics were recovered into
// counted solve errors.
func (s *Stats) SolvePanics() uint64 { return s.solvePanics.Load() }

// LastSolveLatency returns the duration of the most recent solve.
func (s *Stats) LastSolveLatency() time.Duration {
	return time.Duration(s.lastSolveNanos.Load())
}

// recordSolveTier counts a published epoch against the solver tier that
// produced it.
func (s *Stats) recordSolveTier(t core.Tier, d time.Duration) {
	if i := int(t); i >= 0 && i < tierSlots {
		s.tierSolves[i].Add(1)
		s.tierLastNanos[i].Store(int64(d))
	}
}

// TierSolves returns how many published epochs the given solver tier
// produced.
func (s *Stats) TierSolves(t core.Tier) uint64 {
	if i := int(t); i >= 0 && i < tierSlots {
		return s.tierSolves[i].Load()
	}
	return 0
}

// TierLastSolveLatency returns the duration of the tier's most recent
// solve, zero when the tier has produced no epochs.
func (s *Stats) TierLastSolveLatency(t core.Tier) time.Duration {
	if i := int(t); i >= 0 && i < tierSlots {
		return time.Duration(s.tierLastNanos[i].Load())
	}
	return 0
}

// Admitted returns a task's admitted-offload count.
func (s *Stats) Admitted(id string) uint64 { return s.task(id).admitted.Load() }

// Rejected returns a task's rate-rejected offload count.
func (s *Stats) Rejected(id string) uint64 { return s.task(id).rejected.Load() }

// Latency exposes the end-to-end latency window (seconds).
func (s *Stats) Latency() *metrics.Window { return s.latency }
