package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"offloadnn/internal/core"
	"offloadnn/internal/faultinject"
	"offloadnn/internal/workload"
)

func getMetricsBody(t *testing.T, srv *Server) string {
	t.Helper()
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("metrics status %d", w.Code)
	}
	return w.Body.String()
}

func getSolveTier(t *testing.T, srv *Server) string {
	t.Helper()
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	var h struct {
		SolveTier string `json:"solve_tier"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &h); err != nil {
		t.Fatalf("healthz body: %v", err)
	}
	return h.SolveTier
}

// TestAutoTierEscalatesBySize checks the auto tier switches to the
// approximate solver at the configured registry size, and that the
// chosen tier is visible on the epoch, /healthz and /metrics.
func TestAutoTierEscalatesBySize(t *testing.T) {
	srv := newTestServer(t, Config{Debounce: time.Hour, ApproxAfter: 3})
	registerSmall(t, srv, 2)
	if err := srv.ResolveNow(); err != nil {
		t.Fatal(err)
	}
	if ep := srv.Current(); ep.Tier != core.TierHeuristic {
		t.Fatalf("2 tasks solved at tier %v, want heuristic", ep.Tier)
	}
	if got := getSolveTier(t, srv); got != "heuristic" {
		t.Fatalf("healthz solve_tier = %q", got)
	}

	task, err := workload.SmallTask(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Register(task, nil); err != nil {
		t.Fatal(err)
	}
	if err := srv.ResolveNow(); err != nil {
		t.Fatal(err)
	}
	ep := srv.Current()
	if ep.Tier != core.TierApprox {
		t.Fatalf("3 tasks solved at tier %v, want approx", ep.Tier)
	}
	if got := getSolveTier(t, srv); got != "approx" {
		t.Fatalf("healthz solve_tier = %q", got)
	}

	metrics := getMetricsBody(t, srv)
	for _, want := range []string{
		`offloadnn_solve_tier{tier="approx"} 1`,
		`offloadnn_solve_tier{tier="heuristic"} 0`,
		`offloadnn_solve_tier_total{tier="approx"} 1`,
		`offloadnn_solve_tier_total{tier="heuristic"} 1`,
		`offloadnn_solve_duration_seconds{tier="approx"}`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// Dropping back under the threshold de-escalates to the exact tier.
	if err := srv.Deregister(task.ID); err != nil {
		t.Fatal(err)
	}
	if err := srv.ResolveNow(); err != nil {
		t.Fatal(err)
	}
	if ep := srv.Current(); ep.Tier != core.TierHeuristic {
		t.Fatalf("after deregister solved at tier %v, want heuristic", ep.Tier)
	}
}

// TestPinnedTierWins checks an explicit Config.Solver tier overrides the
// auto escalation in both directions.
func TestPinnedTierWins(t *testing.T) {
	approx := newTestServer(t, Config{
		Debounce: time.Hour,
		Solver:   core.SolverSpec{Tier: core.TierApprox},
	})
	registerSmall(t, approx, 2)
	if err := approx.ResolveNow(); err != nil {
		t.Fatal(err)
	}
	if ep := approx.Current(); ep.Tier != core.TierApprox {
		t.Fatalf("pinned approx solved at tier %v", ep.Tier)
	}

	optimal := newTestServer(t, Config{
		Debounce: time.Hour,
		Solver:   core.SolverSpec{Tier: core.TierOptimal},
	})
	registerSmall(t, optimal, 2)
	if err := optimal.ResolveNow(); err != nil {
		t.Fatal(err)
	}
	if ep := optimal.Current(); ep.Tier != core.TierOptimal {
		t.Fatalf("pinned optimal solved at tier %v", ep.Tier)
	}

	// Exceeding ApproxAfter with a pinned heuristic stays heuristic.
	pinned := newTestServer(t, Config{
		Debounce:    time.Hour,
		ApproxAfter: 2,
		Solver:      core.SolverSpec{Tier: core.TierHeuristic},
	})
	registerSmall(t, pinned, 3)
	if err := pinned.ResolveNow(); err != nil {
		t.Fatal(err)
	}
	if ep := pinned.Current(); ep.Tier != core.TierHeuristic {
		t.Fatalf("pinned heuristic solved at tier %v", ep.Tier)
	}
}

func TestBadSolverTierRejected(t *testing.T) {
	_, err := New(Config{
		Res:    smallResources(),
		Alpha:  0.5,
		Solver: core.SolverSpec{Tier: core.Tier(42)},
	})
	if err == nil {
		t.Fatal("New accepted an unknown solver tier")
	}
}

// TestDeadlinePressureEscalation checks the auto tier's hysteresis: a
// solve that blows the epoch deadline holds the next pressureHold
// epochs on the approximate tier, then the exact heuristic is probed
// again.
func TestDeadlinePressureEscalation(t *testing.T) {
	inj := faultinject.New(1)
	srv := newTestServer(t, Config{
		Debounce:     time.Hour,
		SolveTimeout: 20 * time.Millisecond,
		Faults:       inj,
	})
	registerSmall(t, srv, 2)
	if err := srv.ResolveNow(); err != nil {
		t.Fatal(err)
	}
	if ep := srv.Current(); ep.Tier != core.TierHeuristic {
		t.Fatalf("baseline epoch at tier %v", ep.Tier)
	}

	// One hung solve: the epoch deadline fires and arms the pressure.
	inj.Set(faultinject.PointSolverHang, faultinject.Rule{EveryN: 1, Count: 1})
	if err := srv.ForceResolve(); err == nil {
		t.Fatal("hung solve succeeded")
	}
	if got := srv.resolver.pressureLeft; got != pressureHold {
		t.Fatalf("pressureLeft = %d after deadline, want %d", got, pressureHold)
	}

	// The next pressureHold epochs run on the approximate tier...
	for i := 0; i < pressureHold; i++ {
		if err := srv.ForceResolve(); err != nil {
			t.Fatalf("epoch %d under pressure: %v", i, err)
		}
		if ep := srv.Current(); ep.Tier != core.TierApprox {
			t.Fatalf("epoch %d under pressure at tier %v, want approx", i, ep.Tier)
		}
	}
	if got := srv.resolver.pressureLeft; got != 0 {
		t.Fatalf("pressureLeft = %d after hold, want 0", got)
	}

	// ...then the exact tier is probed again.
	if err := srv.ForceResolve(); err != nil {
		t.Fatal(err)
	}
	if ep := srv.Current(); ep.Tier != core.TierHeuristic {
		t.Fatalf("post-pressure probe at tier %v, want heuristic", ep.Tier)
	}
}

// TestScaleEpochUnderDefaultDeadline is the 10k-task acceptance bound:
// one epoch over the full scale scenario must publish through the serve
// daemon inside the default SolveTimeout, on the approximate tier the
// auto escalation picks.
func TestScaleEpochUnderDefaultDeadline(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-task epoch")
	}
	in, err := workload.ScaleScenario(10000)
	if err != nil {
		t.Fatal(err)
	}
	srv := newTestServer(t, Config{
		Res:      in.Res,
		Alpha:    in.Alpha,
		Debounce: time.Hour,
		// SolveTimeout left zero: the default 2s epoch deadline is the
		// bound under test.
	})
	changed, err := srv.ReplaceTasks(in.Tasks, in.Blocks, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		t.Fatal("ReplaceTasks reported no change")
	}
	ep := srv.Current()
	if ep == nil || ep.Deployment == nil {
		t.Fatal("no epoch published")
	}
	if len(ep.Tasks) != 10000 {
		t.Fatalf("epoch has %d tasks", len(ep.Tasks))
	}
	if ep.Tier != core.TierApprox {
		t.Fatalf("10k epoch solved at tier %v, want approx", ep.Tier)
	}
	bound := DefaultSolveTimeout
	if raceDetectorEnabled {
		// The race detector slows the epoch several-fold; the real
		// deadline bound is pinned by the non-race run.
		bound = 5 * DefaultSolveTimeout
	}
	if ep.SolveLatency >= bound {
		t.Fatalf("10k epoch took %v, deadline %v", ep.SolveLatency, bound)
	}
	if n := ep.Deployment.Solution.Breakdown.AdmittedTasks; n == 0 {
		t.Fatal("10k epoch admitted nothing")
	}
	if got := getSolveTier(t, srv); got != "approx" {
		t.Fatalf("healthz solve_tier = %q", got)
	}
}
