// Package sim is a minimal discrete-event simulation engine: a clock and a
// time-ordered event queue with deterministic FIFO tie-breaking. The edge
// emulator builds the Colosseum-substitute experiment (Fig. 11) on top of
// it.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"time"
)

// ErrPast reports scheduling an event before the current simulation time.
var ErrPast = errors.New("sim: event scheduled in the past")

type event struct {
	at  time.Duration
	seq uint64
	fn  func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }

func (q *eventQueue) Push(x any) { *q = append(*q, x.(*event)) }

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Engine owns the simulated clock and event queue. It is not safe for
// concurrent use: events run on the caller's goroutine inside Run/Step.
type Engine struct {
	now   time.Duration
	queue eventQueue
	seq   uint64
}

// NewEngine returns an engine at time zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulation time.
func (e *Engine) Now() time.Duration { return e.now }

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.queue) }

// Schedule enqueues fn to run after delay (≥ 0) of simulated time.
func (e *Engine) Schedule(delay time.Duration, fn func()) error {
	return e.ScheduleAt(e.now+delay, fn)
}

// ScheduleAt enqueues fn at an absolute simulation time.
func (e *Engine) ScheduleAt(at time.Duration, fn func()) error {
	if at < e.now {
		return fmt.Errorf("%w: %v before now %v", ErrPast, at, e.now)
	}
	if fn == nil {
		return errors.New("sim: nil event function")
	}
	e.seq++
	heap.Push(&e.queue, &event{at: at, seq: e.seq, fn: fn})
	return nil
}

// Step executes the next event, advancing the clock. It reports whether an
// event was executed.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*event)
	e.now = ev.at
	ev.fn()
	return true
}

// Run executes events until the queue drains or the next event lies beyond
// `until`; the clock is left at the last executed event (or `until` when
// the horizon is hit). It returns the number of events executed.
func (e *Engine) Run(until time.Duration) int {
	n := 0
	for len(e.queue) > 0 && e.queue[0].at <= until {
		e.Step()
		n++
	}
	if e.now < until {
		e.now = until
	}
	return n
}
