package sim

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestEventsRunInTimeOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	mustSchedule(t, e, 30*time.Millisecond, func() { order = append(order, 3) })
	mustSchedule(t, e, 10*time.Millisecond, func() { order = append(order, 1) })
	mustSchedule(t, e, 20*time.Millisecond, func() { order = append(order, 2) })
	n := e.Run(time.Second)
	if n != 3 {
		t.Fatalf("ran %d events, want 3", n)
	}
	for i, v := range order {
		if v != i+1 {
			t.Fatalf("order %v", order)
		}
	}
}

func TestSameTimeEventsFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		mustSchedule(t, e, 10*time.Millisecond, func() { order = append(order, i) })
	}
	e.Run(time.Second)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestClockAdvancesWithEvents(t *testing.T) {
	e := NewEngine()
	var seen time.Duration
	mustSchedule(t, e, 42*time.Millisecond, func() { seen = e.Now() })
	e.Run(time.Second)
	if seen != 42*time.Millisecond {
		t.Fatalf("Now() inside event = %v, want 42ms", seen)
	}
	if e.Now() != time.Second {
		t.Fatalf("Now() after Run = %v, want horizon 1s", e.Now())
	}
}

func TestRunRespectsHorizon(t *testing.T) {
	e := NewEngine()
	ran := false
	mustSchedule(t, e, 2*time.Second, func() { ran = true })
	n := e.Run(time.Second)
	if n != 0 || ran {
		t.Fatal("event beyond horizon should not run")
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
	// A later Run picks it up.
	e.Run(3 * time.Second)
	if !ran {
		t.Fatal("event not run after extending horizon")
	}
}

func TestEventsCanScheduleEvents(t *testing.T) {
	e := NewEngine()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 10 {
			if err := e.Schedule(time.Millisecond, tick); err != nil {
				t.Errorf("nested schedule: %v", err)
			}
		}
	}
	mustSchedule(t, e, 0, tick)
	e.Run(time.Second)
	if count != 10 {
		t.Fatalf("chained events ran %d times, want 10", count)
	}
}

func TestScheduleValidation(t *testing.T) {
	e := NewEngine()
	mustSchedule(t, e, 10*time.Millisecond, func() {})
	e.Run(time.Second)
	if err := e.ScheduleAt(5*time.Millisecond, func() {}); !errors.Is(err, ErrPast) {
		t.Fatalf("past event err = %v, want ErrPast", err)
	}
	if err := e.Schedule(time.Millisecond, nil); err == nil {
		t.Fatal("nil fn should be rejected")
	}
}

func TestStepSingle(t *testing.T) {
	e := NewEngine()
	if e.Step() {
		t.Fatal("Step on empty queue should report false")
	}
	ran := false
	mustSchedule(t, e, time.Millisecond, func() { ran = true })
	if !e.Step() || !ran {
		t.Fatal("Step did not execute the event")
	}
}

// Property: for any batch of random delays, events execute in
// non-decreasing time order.
func TestQuickTimeOrdering(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		n := 1 + rng.Intn(50)
		var times []time.Duration
		for i := 0; i < n; i++ {
			d := time.Duration(rng.Intn(1000)) * time.Millisecond
			if err := e.Schedule(d, func() { times = append(times, e.Now()) }); err != nil {
				return false
			}
		}
		e.Run(2 * time.Second)
		if len(times) != n {
			return false
		}
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func mustSchedule(t *testing.T, e *Engine, d time.Duration, fn func()) {
	t.Helper()
	if err := e.Schedule(d, fn); err != nil {
		t.Fatal(err)
	}
}
