package tensor

import (
	"fmt"
	"math"
)

// ReLU returns max(0, x) element-wise along with the mask needed for the
// backward pass.
func ReLU(x *Tensor) (*Tensor, []bool) {
	out := New(x.shape...)
	mask := make([]bool, x.Len())
	for i, v := range x.data {
		if v > 0 {
			out.data[i] = v
			mask[i] = true
		}
	}
	return out, mask
}

// ReLUInPlace applies max(0, x) in place and returns the pass-through mask.
func ReLUInPlace(x *Tensor) []bool {
	mask := make([]bool, x.Len())
	for i, v := range x.data {
		if v > 0 {
			mask[i] = true
		} else {
			x.data[i] = 0
		}
	}
	return mask
}

// ReLUInto writes max(0, x) into dst without computing a backward mask —
// the inference fast path. dst must have x's element count; its previous
// contents are overwritten.
func ReLUInto(dst, x *Tensor) error {
	if dst.Len() != x.Len() {
		return fmt.Errorf("%w: relu dst has %d elems, x %d", ErrShape, dst.Len(), x.Len())
	}
	for i, v := range x.data {
		if v > 0 {
			dst.data[i] = v
		} else {
			dst.data[i] = 0
		}
	}
	return nil
}

// ReLUInPlaceInfer applies max(0, x) in place without allocating the
// backward mask — the inference counterpart of ReLUInPlace.
func ReLUInPlaceInfer(x *Tensor) {
	for i, v := range x.data {
		if v < 0 {
			x.data[i] = 0
		}
	}
}

// ReLUBackward masks the upstream gradient with the forward activation mask.
func ReLUBackward(dy *Tensor, mask []bool) (*Tensor, error) {
	if dy.Len() != len(mask) {
		return nil, fmt.Errorf("%w: relu backward dy has %d elems, mask %d", ErrShape, dy.Len(), len(mask))
	}
	dx := New(dy.shape...)
	for i, g := range dy.data {
		if mask[i] {
			dx.data[i] = g
		}
	}
	return dx, nil
}

// Softmax applies a numerically stable row-wise softmax to an (N, K) tensor.
func Softmax(x *Tensor) (*Tensor, error) {
	if x.Rank() != 2 {
		return nil, fmt.Errorf("%w: softmax needs rank-2, got %v", ErrShape, x.shape)
	}
	n, k := x.shape[0], x.shape[1]
	out := New(n, k)
	for i := 0; i < n; i++ {
		row := x.data[i*k : (i+1)*k]
		o := out.data[i*k : (i+1)*k]
		maxv := row[0]
		for _, v := range row[1:] {
			if v > maxv {
				maxv = v
			}
		}
		sum := 0.0
		for j, v := range row {
			e := math.Exp(v - maxv)
			o[j] = e
			sum += e
		}
		inv := 1.0 / sum
		for j := range o {
			o[j] *= inv
		}
	}
	return out, nil
}

// CrossEntropyResult carries the scalar loss and the cached probabilities
// for the backward pass.
type CrossEntropyResult struct {
	Loss  float64
	Probs *Tensor
	y     []int
}

// CrossEntropy computes the mean softmax cross-entropy loss of logits
// (N, K) against integer labels y (len N).
func CrossEntropy(logits *Tensor, y []int) (*CrossEntropyResult, error) {
	if logits.Rank() != 2 {
		return nil, fmt.Errorf("%w: cross-entropy logits must be rank-2, got %v", ErrShape, logits.shape)
	}
	n, k := logits.shape[0], logits.shape[1]
	if len(y) != n {
		return nil, fmt.Errorf("%w: cross-entropy has %d labels for batch %d", ErrShape, len(y), n)
	}
	probs, err := Softmax(logits)
	if err != nil {
		return nil, err
	}
	loss := 0.0
	for i, label := range y {
		if label < 0 || label >= k {
			return nil, fmt.Errorf("%w: label %d out of range [0,%d)", ErrShape, label, k)
		}
		p := probs.data[i*k+label]
		if p < 1e-12 {
			p = 1e-12
		}
		loss -= math.Log(p)
	}
	labels := make([]int, n)
	copy(labels, y)
	return &CrossEntropyResult{Loss: loss / float64(n), Probs: probs, y: labels}, nil
}

// Backward returns dLoss/dLogits, shape (N, K).
func (r *CrossEntropyResult) Backward() *Tensor {
	n, k := r.Probs.shape[0], r.Probs.shape[1]
	dx := r.Probs.Clone()
	inv := 1.0 / float64(n)
	for i, label := range r.y {
		dx.data[i*k+label] -= 1
	}
	dx.ScaleInPlace(inv)
	return dx
}

// Argmax returns the index of the maximum value in each row of an (N, K)
// tensor.
func Argmax(x *Tensor) ([]int, error) {
	if x.Rank() != 2 {
		return nil, fmt.Errorf("%w: argmax needs rank-2, got %v", ErrShape, x.shape)
	}
	n, k := x.shape[0], x.shape[1]
	out := make([]int, n)
	for i := 0; i < n; i++ {
		row := x.data[i*k : (i+1)*k]
		best := 0
		for j, v := range row {
			if v > row[best] {
				best = j
			}
		}
		out[i] = best
	}
	return out, nil
}
