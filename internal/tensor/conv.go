package tensor

import "fmt"

// Conv2DParams describes a 2-D convolution: square kernel, symmetric stride
// and padding. Input and output use the NCHW layout.
type Conv2DParams struct {
	InChannels  int
	OutChannels int
	Kernel      int
	Stride      int
	Padding     int
}

// OutSize returns the output spatial size for an input of size h×w.
func (p Conv2DParams) OutSize(h, w int) (int, int) {
	oh := (h+2*p.Padding-p.Kernel)/p.Stride + 1
	ow := (w+2*p.Padding-p.Kernel)/p.Stride + 1
	return oh, ow
}

// validate checks the parameter block for internal consistency.
func (p Conv2DParams) validate() error {
	switch {
	case p.InChannels <= 0 || p.OutChannels <= 0:
		return fmt.Errorf("%w: conv channels must be positive (%d in, %d out)", ErrShape, p.InChannels, p.OutChannels)
	case p.Kernel <= 0:
		return fmt.Errorf("%w: conv kernel must be positive, got %d", ErrShape, p.Kernel)
	case p.Stride <= 0:
		return fmt.Errorf("%w: conv stride must be positive, got %d", ErrShape, p.Stride)
	case p.Padding < 0:
		return fmt.Errorf("%w: conv padding must be non-negative, got %d", ErrShape, p.Padding)
	}
	return nil
}

// im2col unrolls input patches into a matrix of shape
// (C*K*K) × (OH*OW) for a single image (C×H×W slice of the batch).
func im2col(dst []float64, src []float64, c, h, w int, p Conv2DParams, oh, ow int) {
	cols := oh * ow
	for ch := 0; ch < c; ch++ {
		srcCh := src[ch*h*w : (ch+1)*h*w]
		for ky := 0; ky < p.Kernel; ky++ {
			for kx := 0; kx < p.Kernel; kx++ {
				row := dst[((ch*p.Kernel+ky)*p.Kernel+kx)*cols : ((ch*p.Kernel+ky)*p.Kernel+kx+1)*cols]
				idx := 0
				for oy := 0; oy < oh; oy++ {
					iy := oy*p.Stride + ky - p.Padding
					if iy < 0 || iy >= h {
						fill(row[idx:idx+ow], 0)
						idx += ow
						continue
					}
					base := iy * w
					for ox := 0; ox < ow; ox++ {
						ix := ox*p.Stride + kx - p.Padding
						if ix < 0 || ix >= w {
							row[idx] = 0
						} else {
							row[idx] = srcCh[base+ix]
						}
						idx++
					}
				}
			}
		}
	}
}

// col2im scatters gradient columns back into an image gradient, accumulating
// where patches overlap. It is the adjoint of im2col.
func col2im(dst []float64, src []float64, c, h, w int, p Conv2DParams, oh, ow int) {
	cols := oh * ow
	for ch := 0; ch < c; ch++ {
		dstCh := dst[ch*h*w : (ch+1)*h*w]
		for ky := 0; ky < p.Kernel; ky++ {
			for kx := 0; kx < p.Kernel; kx++ {
				row := src[((ch*p.Kernel+ky)*p.Kernel+kx)*cols : ((ch*p.Kernel+ky)*p.Kernel+kx+1)*cols]
				idx := 0
				for oy := 0; oy < oh; oy++ {
					iy := oy*p.Stride + ky - p.Padding
					if iy < 0 || iy >= h {
						idx += ow
						continue
					}
					base := iy * w
					for ox := 0; ox < ow; ox++ {
						ix := ox*p.Stride + kx - p.Padding
						if ix >= 0 && ix < w {
							dstCh[base+ix] += row[idx]
						}
						idx++
					}
				}
			}
		}
	}
}

// checkConv2DArgs validates the (x, weight, bias, p) triple shared by
// Conv2D and Conv2DInto and returns the batch and spatial dimensions.
func checkConv2DArgs(x, weight, bias *Tensor, p Conv2DParams) (n, c, h, w, oh, ow int, err error) {
	if err = p.validate(); err != nil {
		return
	}
	if x.Rank() != 4 {
		err = fmt.Errorf("%w: conv input must be rank-4 NCHW, got %v", ErrShape, x.shape)
		return
	}
	n, c, h, w = x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	if c != p.InChannels {
		err = fmt.Errorf("%w: conv input has %d channels, params say %d", ErrShape, c, p.InChannels)
		return
	}
	if weight.Rank() != 4 || weight.shape[0] != p.OutChannels || weight.shape[1] != p.InChannels ||
		weight.shape[2] != p.Kernel || weight.shape[3] != p.Kernel {
		err = fmt.Errorf("%w: conv weight shape %v, want %v", ErrShape, weight.shape,
			[]int{p.OutChannels, p.InChannels, p.Kernel, p.Kernel})
		return
	}
	if bias != nil && (bias.Rank() != 1 || bias.shape[0] != p.OutChannels) {
		err = fmt.Errorf("%w: conv bias shape %v, want [%d]", ErrShape, bias.shape, p.OutChannels)
		return
	}
	oh, ow = p.OutSize(h, w)
	if oh <= 0 || ow <= 0 {
		err = fmt.Errorf("%w: conv output size %dx%d for input %dx%d", ErrShape, oh, ow, h, w)
	}
	return
}

// Conv2D computes a batched 2-D convolution.
//
// Input x has shape (N, Cin, H, W); weight has shape (Cout, Cin, K, K);
// bias (optional, may be nil) has shape (Cout). The result has shape
// (N, Cout, OH, OW). The returned tensor is pool-backed (see Rent); the
// caller may Release it once consumed.
func Conv2D(x, weight, bias *Tensor, p Conv2DParams) (*Tensor, error) {
	n, _, _, _, oh, ow, err := checkConv2DArgs(x, weight, bias, p)
	if err != nil {
		return nil, err
	}
	out := rentRaw(n, p.OutChannels, oh, ow)
	conv2DInto(out.data, x, weight, bias, p, oh, ow)
	return out, nil
}

// Conv2DInto computes the convolution into dst, which must already have
// shape (N, Cout, OH, OW). Its previous contents are overwritten.
func Conv2DInto(dst, x, weight, bias *Tensor, p Conv2DParams) error {
	n, _, _, _, oh, ow, err := checkConv2DArgs(x, weight, bias, p)
	if err != nil {
		return err
	}
	if dst.Rank() != 4 || dst.shape[0] != n || dst.shape[1] != p.OutChannels ||
		dst.shape[2] != oh || dst.shape[3] != ow {
		return fmt.Errorf("%w: conv dst shape %v, want [%d %d %d %d]",
			ErrShape, dst.shape, n, p.OutChannels, oh, ow)
	}
	conv2DInto(dst.data, x, weight, bias, p, oh, ow)
	return nil
}

// conv2DInto is the validated kernel body. Above a flop cutoff it shards
// the batch dimension across the worker pool, each shard running the
// serial per-image kernel with its own pooled im2col buffer (batch items
// are independent, so results are bit-identical to the serial loop). A
// single large image instead parallelizes the GEMM row panels.
func conv2DInto(out []float64, x, weight, bias *Tensor, p Conv2DParams, oh, ow int) {
	n, c, h, w := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	patch := p.InChannels * p.Kernel * p.Kernel
	cols := oh * ow
	imgLen := c * h * w
	outLen := p.OutChannels * cols
	var biasData []float64
	if bias != nil {
		biasData = bias.data
	}

	flops := n * p.OutChannels * patch * cols
	if n > 1 && Parallelism() > 1 && flops >= gemmParallelCutoff {
		// Batch shards are leaves on the pool: the per-image matmul must
		// stay serial (see the nesting rule in parallel.go).
		parallelFor(n, 1, func(lo, hi int) {
			colBuf := getF64(patch * cols)
			for b := lo; b < hi; b++ {
				convImage(out[b*outLen:(b+1)*outLen], x.data[b*imgLen:(b+1)*imgLen],
					weight.data, biasData, colBuf, c, h, w, p, oh, ow, patch, cols, matmulInto)
			}
			putF64(colBuf)
		})
		return
	}
	colBuf := getF64(patch * cols)
	for b := 0; b < n; b++ {
		// Serial over the batch: the GEMM may parallelize its row panels.
		convImage(out[b*outLen:(b+1)*outLen], x.data[b*imgLen:(b+1)*imgLen],
			weight.data, biasData, colBuf, c, h, w, p, oh, ow, patch, cols, gemm)
	}
	putF64(colBuf)
}

// convImage computes one image's output plane: im2col into colBuf, then
// out = weight (Cout×patch) · colBuf (patch×cols), plus bias. A top-level
// function so the serial batch loop allocates nothing per call.
func convImage(out, xImg, wData, biasData, colBuf []float64, c, h, w int,
	p Conv2DParams, oh, ow, patch, cols int, mm func(dst, a, b []float64, m, k, n int)) {
	im2col(colBuf, xImg, c, h, w, p, oh, ow)
	mm(out, wData, colBuf, p.OutChannels, patch, cols)
	if biasData != nil {
		for oc := 0; oc < p.OutChannels; oc++ {
			bo := biasData[oc]
			row := out[oc*cols : (oc+1)*cols]
			for i := range row {
				row[i] += bo
			}
		}
	}
}

// Conv2DGrads holds the gradients produced by Conv2DBackward.
type Conv2DGrads struct {
	DX *Tensor // gradient w.r.t. the input, same shape as x
	DW *Tensor // gradient w.r.t. the weight
	DB *Tensor // gradient w.r.t. the bias; nil when bias was nil
}

// Release returns all gradient tensors to the scratch pool.
func (g *Conv2DGrads) Release() {
	if g == nil {
		return
	}
	Release(g.DX)
	Release(g.DW)
	Release(g.DB)
	g.DX, g.DW, g.DB = nil, nil, nil
}

// Conv2DBackward computes gradients of a Conv2D call given the upstream
// gradient dy (shape N×Cout×OH×OW), the original input x and weight.
// Set hasBias to indicate whether a bias gradient is needed.
//
// Above a flop cutoff the batch dimension is sharded across the worker
// pool: dx planes are disjoint per image, while dW/dB accumulate into
// per-shard pooled scratch reduced in shard order, so the result is
// deterministic for a fixed parallelism (and equal to the serial result
// up to floating-point reassociation of the batch sum).
func Conv2DBackward(dy, x, weight *Tensor, p Conv2DParams, hasBias bool) (*Conv2DGrads, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	n, c, h, w := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	oh, ow := p.OutSize(h, w)
	wantDY := []int{n, p.OutChannels, oh, ow}
	if dy.Rank() != 4 || dy.shape[0] != wantDY[0] || dy.shape[1] != wantDY[1] ||
		dy.shape[2] != wantDY[2] || dy.shape[3] != wantDY[3] {
		return nil, fmt.Errorf("%w: conv backward dy shape %v, want %v", ErrShape, dy.shape, wantDY)
	}

	patch := p.InChannels * p.Kernel * p.Kernel
	cols := oh * ow
	imgLen := c * h * w
	outLen := p.OutChannels * cols
	wLen := p.OutChannels * patch

	grads := &Conv2DGrads{
		DX: Rent(x.shape...),
		DW: Rent(weight.shape...),
	}
	if hasBias {
		grads.DB = Rent(p.OutChannels)
	}

	// backwardOne accumulates image b's contribution into dwAcc/dbAcc and
	// writes its (disjoint) dx plane.
	backwardOne := func(colBuf, dColBuf, dwAcc, dbAcc []float64, b int) {
		dyb := dy.data[b*outLen : (b+1)*outLen]
		// dW += dy[b] (Cout×cols) · colBufᵀ (cols×patch)
		im2col(colBuf, x.data[b*imgLen:(b+1)*imgLen], c, h, w, p, oh, ow)
		for oc := 0; oc < p.OutChannels; oc++ {
			dyRow := dyb[oc*cols : (oc+1)*cols]
			dwRow := dwAcc[oc*patch : (oc+1)*patch]
			for pi := 0; pi < patch; pi++ {
				colRow := colBuf[pi*cols : (pi+1)*cols]
				s := 0.0
				for i, g := range dyRow {
					s += g * colRow[i]
				}
				dwRow[pi] += s
			}
			if hasBias {
				s := 0.0
				for _, g := range dyRow {
					s += g
				}
				dbAcc[oc] += s
			}
		}
		// dCol = weightᵀ (patch×Cout) · dy[b] (Cout×cols)
		fill(dColBuf, 0)
		for oc := 0; oc < p.OutChannels; oc++ {
			wRow := weight.data[oc*patch : (oc+1)*patch]
			dyRow := dyb[oc*cols : (oc+1)*cols]
			for pi, wv := range wRow {
				if wv == 0 {
					continue
				}
				dRow := dColBuf[pi*cols : (pi+1)*cols]
				for i, g := range dyRow {
					dRow[i] += wv * g
				}
			}
		}
		col2im(grads.DX.data[b*imgLen:(b+1)*imgLen], dColBuf, c, h, w, p, oh, ow)
	}

	flops := n * p.OutChannels * patch * cols
	spans := shardPlan(n, 1)
	if len(spans) > 1 && flops >= gemmParallelCutoff {
		// Shard 0 accumulates directly into grads; shards 1.. use pooled
		// accumulators merged afterwards in shard order.
		nAux := len(spans) - 1
		auxDW := getF64(nAux * wLen)
		fill(auxDW, 0)
		var auxDB []float64
		if hasBias {
			auxDB = getF64(nAux * p.OutChannels)
			fill(auxDB, 0)
		}
		runShards(spans, func(si, lo, hi int) {
			colBuf := getF64(patch * cols)
			dColBuf := getF64(patch * cols)
			dwAcc, dbAcc := grads.DW.data, []float64(nil)
			if hasBias {
				dbAcc = grads.DB.data
			}
			if si != 0 {
				dwAcc = auxDW[(si-1)*wLen : si*wLen]
				if hasBias {
					dbAcc = auxDB[(si-1)*p.OutChannels : si*p.OutChannels]
				}
			}
			for b := lo; b < hi; b++ {
				backwardOne(colBuf, dColBuf, dwAcc, dbAcc, b)
			}
			putF64(colBuf)
			putF64(dColBuf)
		})
		for si := 0; si < nAux; si++ {
			part := auxDW[si*wLen : (si+1)*wLen]
			dw := grads.DW.data
			for i, v := range part {
				dw[i] += v
			}
			if hasBias {
				pb := auxDB[si*p.OutChannels : (si+1)*p.OutChannels]
				db := grads.DB.data
				for i, v := range pb {
					db[i] += v
				}
			}
		}
		putF64(auxDW)
		if hasBias {
			putF64(auxDB)
		}
		return grads, nil
	}

	colBuf := getF64(patch * cols)
	dColBuf := getF64(patch * cols)
	var dbAcc []float64
	if hasBias {
		dbAcc = grads.DB.data
	}
	for b := 0; b < n; b++ {
		backwardOne(colBuf, dColBuf, grads.DW.data, dbAcc, b)
	}
	putF64(colBuf)
	putF64(dColBuf)
	return grads, nil
}
