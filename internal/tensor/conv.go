package tensor

import "fmt"

// Conv2DParams describes a 2-D convolution: square kernel, symmetric stride
// and padding. Input and output use the NCHW layout.
type Conv2DParams struct {
	InChannels  int
	OutChannels int
	Kernel      int
	Stride      int
	Padding     int
}

// OutSize returns the output spatial size for an input of size h×w.
func (p Conv2DParams) OutSize(h, w int) (int, int) {
	oh := (h+2*p.Padding-p.Kernel)/p.Stride + 1
	ow := (w+2*p.Padding-p.Kernel)/p.Stride + 1
	return oh, ow
}

// validate checks the parameter block for internal consistency.
func (p Conv2DParams) validate() error {
	switch {
	case p.InChannels <= 0 || p.OutChannels <= 0:
		return fmt.Errorf("%w: conv channels must be positive (%d in, %d out)", ErrShape, p.InChannels, p.OutChannels)
	case p.Kernel <= 0:
		return fmt.Errorf("%w: conv kernel must be positive, got %d", ErrShape, p.Kernel)
	case p.Stride <= 0:
		return fmt.Errorf("%w: conv stride must be positive, got %d", ErrShape, p.Stride)
	case p.Padding < 0:
		return fmt.Errorf("%w: conv padding must be non-negative, got %d", ErrShape, p.Padding)
	}
	return nil
}

// im2col unrolls input patches into a matrix of shape
// (C*K*K) × (OH*OW) for a single image (C×H×W slice of the batch).
func im2col(dst []float64, src []float64, c, h, w int, p Conv2DParams, oh, ow int) {
	cols := oh * ow
	for ch := 0; ch < c; ch++ {
		srcCh := src[ch*h*w : (ch+1)*h*w]
		for ky := 0; ky < p.Kernel; ky++ {
			for kx := 0; kx < p.Kernel; kx++ {
				row := dst[((ch*p.Kernel+ky)*p.Kernel+kx)*cols : ((ch*p.Kernel+ky)*p.Kernel+kx+1)*cols]
				idx := 0
				for oy := 0; oy < oh; oy++ {
					iy := oy*p.Stride + ky - p.Padding
					if iy < 0 || iy >= h {
						for ox := 0; ox < ow; ox++ {
							row[idx] = 0
							idx++
						}
						continue
					}
					base := iy * w
					for ox := 0; ox < ow; ox++ {
						ix := ox*p.Stride + kx - p.Padding
						if ix < 0 || ix >= w {
							row[idx] = 0
						} else {
							row[idx] = srcCh[base+ix]
						}
						idx++
					}
				}
			}
		}
	}
}

// col2im scatters gradient columns back into an image gradient, accumulating
// where patches overlap. It is the adjoint of im2col.
func col2im(dst []float64, src []float64, c, h, w int, p Conv2DParams, oh, ow int) {
	cols := oh * ow
	for ch := 0; ch < c; ch++ {
		dstCh := dst[ch*h*w : (ch+1)*h*w]
		for ky := 0; ky < p.Kernel; ky++ {
			for kx := 0; kx < p.Kernel; kx++ {
				row := src[((ch*p.Kernel+ky)*p.Kernel+kx)*cols : ((ch*p.Kernel+ky)*p.Kernel+kx+1)*cols]
				idx := 0
				for oy := 0; oy < oh; oy++ {
					iy := oy*p.Stride + ky - p.Padding
					if iy < 0 || iy >= h {
						idx += ow
						continue
					}
					base := iy * w
					for ox := 0; ox < ow; ox++ {
						ix := ox*p.Stride + kx - p.Padding
						if ix >= 0 && ix < w {
							dstCh[base+ix] += row[idx]
						}
						idx++
					}
				}
			}
		}
	}
}

// Conv2D computes a batched 2-D convolution.
//
// Input x has shape (N, Cin, H, W); weight has shape (Cout, Cin, K, K);
// bias (optional, may be nil) has shape (Cout). The result has shape
// (N, Cout, OH, OW).
func Conv2D(x, weight, bias *Tensor, p Conv2DParams) (*Tensor, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	if x.Rank() != 4 {
		return nil, fmt.Errorf("%w: conv input must be rank-4 NCHW, got %v", ErrShape, x.shape)
	}
	n, c, h, w := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	if c != p.InChannels {
		return nil, fmt.Errorf("%w: conv input has %d channels, params say %d", ErrShape, c, p.InChannels)
	}
	wantW := []int{p.OutChannels, p.InChannels, p.Kernel, p.Kernel}
	if weight.Rank() != 4 || weight.shape[0] != wantW[0] || weight.shape[1] != wantW[1] ||
		weight.shape[2] != wantW[2] || weight.shape[3] != wantW[3] {
		return nil, fmt.Errorf("%w: conv weight shape %v, want %v", ErrShape, weight.shape, wantW)
	}
	if bias != nil && (bias.Rank() != 1 || bias.shape[0] != p.OutChannels) {
		return nil, fmt.Errorf("%w: conv bias shape %v, want [%d]", ErrShape, bias.shape, p.OutChannels)
	}
	oh, ow := p.OutSize(h, w)
	if oh <= 0 || ow <= 0 {
		return nil, fmt.Errorf("%w: conv output size %dx%d for input %dx%d", ErrShape, oh, ow, h, w)
	}

	out := New(n, p.OutChannels, oh, ow)
	patch := p.InChannels * p.Kernel * p.Kernel
	cols := oh * ow
	colBuf := make([]float64, patch*cols)
	imgLen := c * h * w
	outLen := p.OutChannels * cols

	for b := 0; b < n; b++ {
		im2col(colBuf, x.data[b*imgLen:(b+1)*imgLen], c, h, w, p, oh, ow)
		// out[b] = weight (Cout×patch) · colBuf (patch×cols)
		matmulInto(out.data[b*outLen:(b+1)*outLen], weight.data, colBuf, p.OutChannels, patch, cols)
		if bias != nil {
			for oc := 0; oc < p.OutChannels; oc++ {
				bo := bias.data[oc]
				row := out.data[b*outLen+oc*cols : b*outLen+(oc+1)*cols]
				for i := range row {
					row[i] += bo
				}
			}
		}
	}
	return out, nil
}

// Conv2DGrads holds the gradients produced by Conv2DBackward.
type Conv2DGrads struct {
	DX *Tensor // gradient w.r.t. the input, same shape as x
	DW *Tensor // gradient w.r.t. the weight
	DB *Tensor // gradient w.r.t. the bias; nil when bias was nil
}

// Conv2DBackward computes gradients of a Conv2D call given the upstream
// gradient dy (shape N×Cout×OH×OW), the original input x and weight.
// Set hasBias to indicate whether a bias gradient is needed.
func Conv2DBackward(dy, x, weight *Tensor, p Conv2DParams, hasBias bool) (*Conv2DGrads, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	n, c, h, w := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	oh, ow := p.OutSize(h, w)
	wantDY := []int{n, p.OutChannels, oh, ow}
	if dy.Rank() != 4 || dy.shape[0] != wantDY[0] || dy.shape[1] != wantDY[1] ||
		dy.shape[2] != wantDY[2] || dy.shape[3] != wantDY[3] {
		return nil, fmt.Errorf("%w: conv backward dy shape %v, want %v", ErrShape, dy.shape, wantDY)
	}

	patch := p.InChannels * p.Kernel * p.Kernel
	cols := oh * ow
	imgLen := c * h * w
	outLen := p.OutChannels * cols

	grads := &Conv2DGrads{
		DX: New(x.shape...),
		DW: New(weight.shape...),
	}
	if hasBias {
		grads.DB = New(p.OutChannels)
	}

	colBuf := make([]float64, patch*cols)
	dColBuf := make([]float64, patch*cols)
	dwAccum := grads.DW.data

	for b := 0; b < n; b++ {
		dyb := dy.data[b*outLen : (b+1)*outLen]
		// dW += dy[b] (Cout×cols) · colBufᵀ (cols×patch)
		im2col(colBuf, x.data[b*imgLen:(b+1)*imgLen], c, h, w, p, oh, ow)
		for oc := 0; oc < p.OutChannels; oc++ {
			dyRow := dyb[oc*cols : (oc+1)*cols]
			dwRow := dwAccum[oc*patch : (oc+1)*patch]
			for pi := 0; pi < patch; pi++ {
				colRow := colBuf[pi*cols : (pi+1)*cols]
				s := 0.0
				for i, g := range dyRow {
					s += g * colRow[i]
				}
				dwRow[pi] += s
			}
			if hasBias {
				s := 0.0
				for _, g := range dyRow {
					s += g
				}
				grads.DB.data[oc] += s
			}
		}
		// dCol = weightᵀ (patch×Cout) · dy[b] (Cout×cols)
		for i := range dColBuf {
			dColBuf[i] = 0
		}
		for oc := 0; oc < p.OutChannels; oc++ {
			wRow := weight.data[oc*patch : (oc+1)*patch]
			dyRow := dyb[oc*cols : (oc+1)*cols]
			for pi, wv := range wRow {
				if wv == 0 {
					continue
				}
				dRow := dColBuf[pi*cols : (pi+1)*cols]
				for i, g := range dyRow {
					dRow[i] += wv * g
				}
			}
		}
		col2im(grads.DX.data[b*imgLen:(b+1)*imgLen], dColBuf, c, h, w, p, oh, ow)
	}
	return grads, nil
}
