package tensor

import "fmt"

// Reduced-precision convolution: the same im2col + GEMM shape as conv.go
// with the conversion work hoisted out of the hot loops. Each image is
// converted (f32) or quantized (i8) ONCE into typed scratch — so the
// K²-overlapping im2col copy below it moves 4-byte (or 1-byte) elements
// instead of doing K² redundant conversions — and the GEMM runs entirely
// in the narrow type; bias add and the widening back to the float64
// interchange tensor are fused into a single writeback pass. Batch
// sharding and the leaf-kernel rule mirror conv2DInto exactly, and the
// narrow kernels are deterministic across worker counts (f32 by fixed
// summation grouping, i8 exactly), so quantized inference keeps the
// engine's reproducibility story.

// checkConvPrepared validates x/bias/params for a prepared-weight conv
// call and returns the batch and spatial dimensions.
func checkConvPrepared(x, bias *Tensor, p Conv2DParams, wOut, wPatch int) (n, c, h, w, oh, ow int, err error) {
	if err = p.validate(); err != nil {
		return
	}
	if x.Rank() != 4 {
		err = fmt.Errorf("%w: conv input must be rank-4 NCHW, got %v", ErrShape, x.shape)
		return
	}
	n, c, h, w = x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	if c != p.InChannels {
		err = fmt.Errorf("%w: conv input has %d channels, params say %d", ErrShape, c, p.InChannels)
		return
	}
	patch := p.InChannels * p.Kernel * p.Kernel
	if wOut != p.OutChannels || wPatch != patch {
		err = fmt.Errorf("%w: prepared conv weight is %dx%d, params want %dx%d",
			ErrShape, wOut, wPatch, p.OutChannels, patch)
		return
	}
	if bias != nil && (bias.Rank() != 1 || bias.shape[0] != p.OutChannels) {
		err = fmt.Errorf("%w: conv bias shape %v, want [%d]", ErrShape, bias.shape, p.OutChannels)
		return
	}
	oh, ow = p.OutSize(h, w)
	if oh <= 0 || ow <= 0 {
		err = fmt.Errorf("%w: conv output size %dx%d for input %dx%d", ErrShape, oh, ow, h, w)
	}
	return
}

// Conv2DF32 computes a batched 2-D convolution in float32 arithmetic
// from a pre-converted weight. Input and result stay float64 tensors
// (the engine interchange type); the result is pool-backed like Conv2D.
func Conv2DF32(x *Tensor, weight *ConvWeightsF32, bias *Tensor, p Conv2DParams) (*Tensor, error) {
	n, _, _, _, oh, ow, err := checkConvPrepared(x, bias, p, weight.out, weight.patch)
	if err != nil {
		return nil, err
	}
	out := rentRaw(n, p.OutChannels, oh, ow)
	conv2DIntoF32(out.data, x, weight, bias, p, oh, ow)
	return out, nil
}

// Conv2DIntoF32 is the destination-reuse variant of Conv2DF32.
func Conv2DIntoF32(dst, x *Tensor, weight *ConvWeightsF32, bias *Tensor, p Conv2DParams) error {
	n, _, _, _, oh, ow, err := checkConvPrepared(x, bias, p, weight.out, weight.patch)
	if err != nil {
		return err
	}
	if dst.Rank() != 4 || dst.shape[0] != n || dst.shape[1] != p.OutChannels ||
		dst.shape[2] != oh || dst.shape[3] != ow {
		return fmt.Errorf("%w: conv dst shape %v, want [%d %d %d %d]",
			ErrShape, dst.shape, n, p.OutChannels, oh, ow)
	}
	conv2DIntoF32(dst.data, x, weight, bias, p, oh, ow)
	return nil
}

// matmulInto32 runs the full-row f32 panel serially — the leaf kernel for
// batch shards.
func matmulInto32(dst, a, b []float32, m, k, n int) {
	gemmPanel32(dst, a, b, 0, m, k, n)
}

// conv2DIntoF32 is the validated f32 kernel body, mirroring conv2DInto's
// batch sharding.
func conv2DIntoF32(out []float64, x *Tensor, weight *ConvWeightsF32, bias *Tensor, p Conv2DParams, oh, ow int) {
	n, c, h, w := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	patch := weight.patch
	cols := oh * ow
	imgLen := c * h * w
	outLen := p.OutChannels * cols
	var biasData []float64
	if bias != nil {
		biasData = bias.data
	}

	flops := n * p.OutChannels * patch * cols
	if n > 1 && Parallelism() > 1 && flops >= gemmParallelCutoff {
		parallelFor(n, 1, func(lo, hi int) {
			img32 := scratchF32.get(imgLen)
			colBuf := scratchF32.get(patch * cols)
			out32 := scratchF32.get(outLen)
			for b := lo; b < hi; b++ {
				toF32(img32, x.data[b*imgLen:(b+1)*imgLen])
				convImageF32(out[b*outLen:(b+1)*outLen], img32, weight.w, biasData,
					colBuf, out32, c, h, w, p, oh, ow, patch, cols, matmulInto32)
			}
			scratchF32.put(out32)
			scratchF32.put(colBuf)
			scratchF32.put(img32)
		})
		return
	}
	img32 := scratchF32.get(imgLen)
	colBuf := scratchF32.get(patch * cols)
	out32 := scratchF32.get(outLen)
	for b := 0; b < n; b++ {
		toF32(img32, x.data[b*imgLen:(b+1)*imgLen])
		// Serial over the batch: the GEMM may parallelize its row panels.
		convImageF32(out[b*outLen:(b+1)*outLen], img32, weight.w, biasData,
			colBuf, out32, c, h, w, p, oh, ow, patch, cols, GemmF32)
	}
	scratchF32.put(out32)
	scratchF32.put(colBuf)
	scratchF32.put(img32)
}

// convImageF32 computes one image's output plane in f32: im2col over the
// converted image, narrow GEMM, then a fused bias-add + widen writeback.
func convImageF32(out []float64, img32, w32 []float32, biasData []float64,
	colBuf, out32 []float32, c, h, w int, p Conv2DParams, oh, ow, patch, cols int,
	mm func(dst, a, b []float32, m, k, n int)) {
	im2col32(colBuf, img32, c, h, w, p, oh, ow)
	mm(out32, w32, colBuf, p.OutChannels, patch, cols)
	for oc := 0; oc < p.OutChannels; oc++ {
		bo := 0.0
		if biasData != nil {
			bo = biasData[oc]
		}
		row32 := out32[oc*cols : (oc+1)*cols]
		row := out[oc*cols : (oc+1)*cols]
		for i, v := range row32 {
			row[i] = float64(v) + bo
		}
	}
}

// Conv2DI8 computes a batched 2-D convolution in symmetric int8
// arithmetic with int32 accumulation. xScale is the activation
// quantization scale; pass a calibrated scale for the static path, or
// xScale <= 0 to derive a per-image scale from each image's max |x|
// (exact same quantizer, one extra pass per image). The per-image
// fallback depends only on that image's data, so dynamic-scale results
// are independent of batch sharding.
func Conv2DI8(x *Tensor, weight *ConvWeightsI8, bias *Tensor, p Conv2DParams, xScale float64) (*Tensor, error) {
	n, _, _, _, oh, ow, err := checkConvPrepared(x, bias, p, weight.out, weight.patch)
	if err != nil {
		return nil, err
	}
	out := rentRaw(n, p.OutChannels, oh, ow)
	conv2DIntoI8(out.data, x, weight, bias, p, oh, ow, xScale)
	return out, nil
}

// Conv2DIntoI8 is the destination-reuse variant of Conv2DI8.
func Conv2DIntoI8(dst, x *Tensor, weight *ConvWeightsI8, bias *Tensor, p Conv2DParams, xScale float64) error {
	n, _, _, _, oh, ow, err := checkConvPrepared(x, bias, p, weight.out, weight.patch)
	if err != nil {
		return err
	}
	if dst.Rank() != 4 || dst.shape[0] != n || dst.shape[1] != p.OutChannels ||
		dst.shape[2] != oh || dst.shape[3] != ow {
		return fmt.Errorf("%w: conv dst shape %v, want [%d %d %d %d]",
			ErrShape, dst.shape, n, p.OutChannels, oh, ow)
	}
	conv2DIntoI8(dst.data, x, weight, bias, p, oh, ow, xScale)
	return nil
}

// matmulInto8 runs the full-row i8 panel serially — the leaf kernel for
// batch shards.
func matmulInto8(dst []int32, a, b []int8, m, k, n int) {
	gemmPanel8(dst, a, b, 0, m, k, n)
}

// conv2DIntoI8 is the validated i8 kernel body.
func conv2DIntoI8(out []float64, x *Tensor, weight *ConvWeightsI8, bias *Tensor, p Conv2DParams, oh, ow int, xScale float64) {
	n, c, h, w := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	patch := weight.patch
	cols := oh * ow
	imgLen := c * h * w
	outLen := p.OutChannels * cols
	var biasData []float64
	if bias != nil {
		biasData = bias.data
	}
	// A non-positive xScale falls back to one dynamic scale per image,
	// never per batch: the scale then depends only on that image's data,
	// so the result cannot change with the batch sharding below.
	flops := n * p.OutChannels * patch * cols
	if n > 1 && Parallelism() > 1 && flops >= gemmParallelCutoff {
		parallelFor(n, 1, func(lo, hi int) {
			img8 := scratchI8.get(imgLen)
			colBuf := scratchI8.get(patch * cols)
			acc := scratchI32.get(outLen)
			for b := lo; b < hi; b++ {
				img := x.data[b*imgLen : (b+1)*imgLen]
				sc := xScale
				if sc <= 0 {
					sc = SymmetricScale(img)
				}
				QuantizeSymmetric(img8, img, sc)
				convImageI8(out[b*outLen:(b+1)*outLen], img8, weight, biasData,
					colBuf, acc, c, h, w, p, oh, ow, patch, cols, sc, matmulInto8)
			}
			scratchI32.put(acc)
			scratchI8.put(colBuf)
			scratchI8.put(img8)
		})
		return
	}
	img8 := scratchI8.get(imgLen)
	colBuf := scratchI8.get(patch * cols)
	acc := scratchI32.get(outLen)
	for b := 0; b < n; b++ {
		img := x.data[b*imgLen : (b+1)*imgLen]
		sc := xScale
		if sc <= 0 {
			sc = SymmetricScale(img)
		}
		QuantizeSymmetric(img8, img, sc)
		convImageI8(out[b*outLen:(b+1)*outLen], img8, weight, biasData,
			colBuf, acc, c, h, w, p, oh, ow, patch, cols, sc, GemmI8)
	}
	scratchI32.put(acc)
	scratchI8.put(colBuf)
	scratchI8.put(img8)
}

// convImageI8 computes one image's output plane in int8: byte im2col over
// the quantized image, integer GEMM, then dequantize (per-output-channel
// scale × activation scale) fused with bias add into the f64 writeback.
func convImageI8(out []float64, img8 []int8, weight *ConvWeightsI8, biasData []float64,
	colBuf []int8, acc []int32, c, h, w int, p Conv2DParams, oh, ow, patch, cols int,
	xScale float64, mm func(dst []int32, a, b []int8, m, k, n int)) {
	im2col8(colBuf, img8, c, h, w, p, oh, ow)
	mm(acc, weight.w, colBuf, p.OutChannels, patch, cols)
	for oc := 0; oc < p.OutChannels; oc++ {
		bo := 0.0
		if biasData != nil {
			bo = biasData[oc]
		}
		sc := weight.scale[oc] * xScale
		accRow := acc[oc*cols : (oc+1)*cols]
		row := out[oc*cols : (oc+1)*cols]
		for i, v := range accRow {
			row[i] = float64(v)*sc + bo
		}
	}
}

// im2col32 is im2col over a float32 image (see conv.go for the layout).
func im2col32(dst, src []float32, c, h, w int, p Conv2DParams, oh, ow int) {
	cols := oh * ow
	for ch := 0; ch < c; ch++ {
		srcCh := src[ch*h*w : (ch+1)*h*w]
		for ky := 0; ky < p.Kernel; ky++ {
			for kx := 0; kx < p.Kernel; kx++ {
				row := dst[((ch*p.Kernel+ky)*p.Kernel+kx)*cols : ((ch*p.Kernel+ky)*p.Kernel+kx+1)*cols]
				idx := 0
				for oy := 0; oy < oh; oy++ {
					iy := oy*p.Stride + ky - p.Padding
					if iy < 0 || iy >= h {
						fill32(row[idx:idx+ow], 0)
						idx += ow
						continue
					}
					base := iy * w
					for ox := 0; ox < ow; ox++ {
						ix := ox*p.Stride + kx - p.Padding
						if ix < 0 || ix >= w {
							row[idx] = 0
						} else {
							row[idx] = srcCh[base+ix]
						}
						idx++
					}
				}
			}
		}
	}
}

// im2col8 is im2col over a quantized int8 image: pure byte moves —
// symmetric quantization maps the zero padding to 0 exactly.
func im2col8(dst, src []int8, c, h, w int, p Conv2DParams, oh, ow int) {
	cols := oh * ow
	for ch := 0; ch < c; ch++ {
		srcCh := src[ch*h*w : (ch+1)*h*w]
		for ky := 0; ky < p.Kernel; ky++ {
			for kx := 0; kx < p.Kernel; kx++ {
				row := dst[((ch*p.Kernel+ky)*p.Kernel+kx)*cols : ((ch*p.Kernel+ky)*p.Kernel+kx+1)*cols]
				idx := 0
				for oy := 0; oy < oh; oy++ {
					iy := oy*p.Stride + ky - p.Padding
					if iy < 0 || iy >= h {
						fillI8(row[idx:idx+ow], 0)
						idx += ow
						continue
					}
					base := iy * w
					for ox := 0; ox < ow; ox++ {
						ix := ox*p.Stride + kx - p.Padding
						if ix < 0 || ix >= w {
							row[idx] = 0
						} else {
							row[idx] = srcCh[base+ix]
						}
						idx++
					}
				}
			}
		}
	}
}
