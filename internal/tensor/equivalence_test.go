package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// The reference kernels below are deliberately naive re-implementations —
// straight loops with no tiling, pooling or sharding — so the property
// sweeps check the blocked/parallel production kernels against an
// independently-derived answer rather than against themselves.

func refMatMul(a, b *Tensor) *Tensor {
	m, k, n := a.Dim(0), a.Dim(1), b.Dim(1)
	out := New(m, n)
	for i := 0; i < m; i++ {
		for kk := 0; kk < k; kk++ {
			av := a.At(i, kk)
			for j := 0; j < n; j++ {
				out.Set(out.At(i, j)+av*b.At(kk, j), i, j)
			}
		}
	}
	return out
}

func refMatMulTransA(a, b *Tensor) *Tensor {
	k, m, n := a.Dim(0), a.Dim(1), b.Dim(1)
	out := New(m, n)
	for kk := 0; kk < k; kk++ {
		for i := 0; i < m; i++ {
			av := a.At(kk, i)
			for j := 0; j < n; j++ {
				out.Set(out.At(i, j)+av*b.At(kk, j), i, j)
			}
		}
	}
	return out
}

func refMatMulTransB(a, b *Tensor) *Tensor {
	m, k, n := a.Dim(0), a.Dim(1), b.Dim(0)
	out := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for kk := 0; kk < k; kk++ {
				s += a.At(i, kk) * b.At(j, kk)
			}
			out.Set(s, i, j)
		}
	}
	return out
}

func refConv2D(x, weight, bias *Tensor, p Conv2DParams) *Tensor {
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	oh, ow := p.OutSize(h, w)
	out := New(n, p.OutChannels, oh, ow)
	for b := 0; b < n; b++ {
		for oc := 0; oc < p.OutChannels; oc++ {
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					s := 0.0
					for ic := 0; ic < c; ic++ {
						for ky := 0; ky < p.Kernel; ky++ {
							iy := oy*p.Stride + ky - p.Padding
							if iy < 0 || iy >= h {
								continue
							}
							for kx := 0; kx < p.Kernel; kx++ {
								ix := ox*p.Stride + kx - p.Padding
								if ix < 0 || ix >= w {
									continue
								}
								s += x.At(b, ic, iy, ix) * weight.At(oc, ic, ky, kx)
							}
						}
					}
					if bias != nil {
						s += bias.At(oc)
					}
					out.Set(s, b, oc, oy, ox)
				}
			}
		}
	}
	return out
}

func refConv2DBackward(dy, x, weight *Tensor, p Conv2DParams, hasBias bool) (dx, dw, db *Tensor) {
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	oh, ow := p.OutSize(h, w)
	dx = New(x.Shape()...)
	dw = New(weight.Shape()...)
	if hasBias {
		db = New(p.OutChannels)
	}
	for b := 0; b < n; b++ {
		for oc := 0; oc < p.OutChannels; oc++ {
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					g := dy.At(b, oc, oy, ox)
					if hasBias {
						db.Set(db.At(oc)+g, oc)
					}
					for ic := 0; ic < c; ic++ {
						for ky := 0; ky < p.Kernel; ky++ {
							iy := oy*p.Stride + ky - p.Padding
							if iy < 0 || iy >= h {
								continue
							}
							for kx := 0; kx < p.Kernel; kx++ {
								ix := ox*p.Stride + kx - p.Padding
								if ix < 0 || ix >= w {
									continue
								}
								dx.Set(dx.At(b, ic, iy, ix)+g*weight.At(oc, ic, ky, kx), b, ic, iy, ix)
								dw.Set(dw.At(oc, ic, ky, kx)+g*x.At(b, ic, iy, ix), oc, ic, ky, kx)
							}
						}
					}
				}
			}
		}
	}
	return dx, dw, db
}

func randTensor(rng *rand.Rand, shape ...int) *Tensor {
	t := New(shape...)
	d := t.Data()
	for i := range d {
		d[i] = rng.NormFloat64()
	}
	return t
}

func maxAbsDiff(t *testing.T, got, want *Tensor) float64 {
	t.Helper()
	if !got.SameShape(want) {
		t.Fatalf("shape %v, want %v", got.Shape(), want.Shape())
	}
	worst := 0.0
	g, wd := got.Data(), want.Data()
	for i := range g {
		if d := math.Abs(g[i] - wd[i]); d > worst {
			worst = d
		}
	}
	return worst
}

// atParallelism runs fn at each of the given worker counts, restoring the
// previous setting afterwards.
func atParallelism(t *testing.T, workers []int, fn func(t *testing.T, w int)) {
	t.Helper()
	prev := SetParallelism(1)
	defer SetParallelism(prev)
	for _, w := range workers {
		SetParallelism(w)
		fn(t, w)
	}
}

func TestMatMulMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	shapes := [][3]int{
		{1, 1, 1}, {1, 5, 3}, {3, 1, 7}, {7, 3, 1},
		{5, 7, 9}, {17, 13, 11}, {33, 65, 31},
		{70, 71, 72}, // above the parallel cutoff
	}
	for _, s := range shapes {
		m, k, n := s[0], s[1], s[2]
		a := randTensor(rng, m, k)
		b := randTensor(rng, k, n)
		want := refMatMul(a, b)
		atParallelism(t, []int{1, 4}, func(t *testing.T, w int) {
			got, err := MatMul(a, b)
			if err != nil {
				t.Fatalf("matmul %v workers=%d: %v", s, w, err)
			}
			if d := maxAbsDiff(t, got, want); d > 1e-12 {
				t.Errorf("matmul %v workers=%d: max diff %g", s, w, d)
			}
			Release(got)
		})
	}
}

// TestMatMulBitIdenticalAcrossWorkers pins the stronger property the
// calibration relies on: the blocked parallel kernel tiles only in ways
// that keep each output element's k-summation in ascending order, so the
// result is bit-identical to the serial kernel, not merely close.
func TestMatMulBitIdenticalAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, s := range [][3]int{{70, 71, 72}, {129, 257, 65}} {
		a := randTensor(rng, s[0], s[1])
		b := randTensor(rng, s[1], s[2])
		var serial *Tensor
		atParallelism(t, []int{1, 2, 4}, func(t *testing.T, w int) {
			got, err := MatMul(a, b)
			if err != nil {
				t.Fatal(err)
			}
			if serial == nil {
				serial = got.Clone()
			} else {
				g, sd := got.Data(), serial.Data()
				for i := range g {
					if g[i] != sd[i] {
						t.Fatalf("shape %v workers=%d: elem %d differs bitwise: %g vs %g",
							s, w, i, g[i], sd[i])
					}
				}
			}
			Release(got)
		})
	}
}

func TestMatMulTransposedMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, s := range [][3]int{{1, 3, 5}, {5, 7, 9}, {31, 17, 23}, {70, 71, 72}} {
		m, k, n := s[0], s[1], s[2]
		aT := randTensor(rng, k, m) // MatMulTransA takes a as (K, M)
		a := randTensor(rng, m, k)
		b := randTensor(rng, k, n)
		bT := randTensor(rng, n, k) // MatMulTransB takes b as (N, K)
		wantA := refMatMulTransA(aT, b)
		wantB := refMatMulTransB(a, bT)
		atParallelism(t, []int{1, 4}, func(t *testing.T, w int) {
			gotA, err := MatMulTransA(aT, b)
			if err != nil {
				t.Fatalf("transA %v workers=%d: %v", s, w, err)
			}
			if d := maxAbsDiff(t, gotA, wantA); d > 1e-12 {
				t.Errorf("transA %v workers=%d: max diff %g", s, w, d)
			}
			Release(gotA)
			gotB, err := MatMulTransB(a, bT)
			if err != nil {
				t.Fatalf("transB %v workers=%d: %v", s, w, err)
			}
			if d := maxAbsDiff(t, gotB, wantB); d > 1e-12 {
				t.Errorf("transB %v workers=%d: max diff %g", s, w, d)
			}
			Release(gotB)
		})
	}
}

func TestConv2DMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	cases := []struct {
		n, c, h, w int
		p          Conv2DParams
		bias       bool
	}{
		{1, 1, 5, 5, Conv2DParams{InChannels: 1, OutChannels: 1, Kernel: 3, Stride: 1, Padding: 1}, false},
		{2, 3, 7, 5, Conv2DParams{InChannels: 3, OutChannels: 4, Kernel: 3, Stride: 2, Padding: 1}, true},
		{3, 2, 9, 9, Conv2DParams{InChannels: 2, OutChannels: 5, Kernel: 1, Stride: 1, Padding: 0}, false},
		{1, 4, 8, 6, Conv2DParams{InChannels: 4, OutChannels: 3, Kernel: 5, Stride: 3, Padding: 2}, true},
		{5, 3, 6, 6, Conv2DParams{InChannels: 3, OutChannels: 2, Kernel: 2, Stride: 2, Padding: 0}, false},
		// Large enough to cross the flop cutoff and shard the batch.
		{8, 8, 20, 20, Conv2DParams{InChannels: 8, OutChannels: 16, Kernel: 3, Stride: 1, Padding: 1}, true},
	}
	for _, tc := range cases {
		x := randTensor(rng, tc.n, tc.c, tc.h, tc.w)
		weight := randTensor(rng, tc.p.OutChannels, tc.p.InChannels, tc.p.Kernel, tc.p.Kernel)
		var bias *Tensor
		if tc.bias {
			bias = randTensor(rng, tc.p.OutChannels)
		}
		want := refConv2D(x, weight, bias, tc.p)
		atParallelism(t, []int{1, 4}, func(t *testing.T, w int) {
			got, err := Conv2D(x, weight, bias, tc.p)
			if err != nil {
				t.Fatalf("conv %+v workers=%d: %v", tc.p, w, err)
			}
			if d := maxAbsDiff(t, got, want); d > 1e-12 {
				t.Errorf("conv %+v workers=%d: max diff %g", tc.p, w, d)
			}
			Release(got)

			oh, ow := tc.p.OutSize(tc.h, tc.w)
			dst := New(tc.n, tc.p.OutChannels, oh, ow)
			if err := Conv2DInto(dst, x, weight, bias, tc.p); err != nil {
				t.Fatalf("conv into %+v workers=%d: %v", tc.p, w, err)
			}
			if d := maxAbsDiff(t, dst, want); d > 1e-12 {
				t.Errorf("conv into %+v workers=%d: max diff %g", tc.p, w, d)
			}
		})
	}
}

func TestConv2DBackwardMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cases := []struct {
		n, c, h, w int
		p          Conv2DParams
		bias       bool
	}{
		{2, 3, 7, 5, Conv2DParams{InChannels: 3, OutChannels: 4, Kernel: 3, Stride: 2, Padding: 1}, true},
		{1, 2, 9, 9, Conv2DParams{InChannels: 2, OutChannels: 5, Kernel: 1, Stride: 1, Padding: 0}, false},
		{3, 4, 8, 6, Conv2DParams{InChannels: 4, OutChannels: 3, Kernel: 5, Stride: 3, Padding: 2}, true},
		// Crosses the flop cutoff: exercises the sharded dW/dB reduction.
		{8, 8, 20, 20, Conv2DParams{InChannels: 8, OutChannels: 16, Kernel: 3, Stride: 1, Padding: 1}, true},
	}
	for _, tc := range cases {
		x := randTensor(rng, tc.n, tc.c, tc.h, tc.w)
		weight := randTensor(rng, tc.p.OutChannels, tc.p.InChannels, tc.p.Kernel, tc.p.Kernel)
		oh, ow := tc.p.OutSize(tc.h, tc.w)
		dy := randTensor(rng, tc.n, tc.p.OutChannels, oh, ow)
		wantDX, wantDW, wantDB := refConv2DBackward(dy, x, weight, tc.p, tc.bias)
		atParallelism(t, []int{1, 4}, func(t *testing.T, w int) {
			grads, err := Conv2DBackward(dy, x, weight, tc.p, tc.bias)
			if err != nil {
				t.Fatalf("conv backward %+v workers=%d: %v", tc.p, w, err)
			}
			if d := maxAbsDiff(t, grads.DX, wantDX); d > 1e-12 {
				t.Errorf("conv backward dx %+v workers=%d: max diff %g", tc.p, w, d)
			}
			if d := maxAbsDiff(t, grads.DW, wantDW); d > 1e-12 {
				t.Errorf("conv backward dw %+v workers=%d: max diff %g", tc.p, w, d)
			}
			if tc.bias {
				if d := maxAbsDiff(t, grads.DB, wantDB); d > 1e-12 {
					t.Errorf("conv backward db %+v workers=%d: max diff %g", tc.p, w, d)
				}
			}
			grads.Release()
		})
	}
}

func TestInferenceOpVariantsMatch(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	x := randTensor(rng, 3, 4, 6, 5)

	// ReLU
	want, _ := ReLU(x)
	got := New(x.Shape()...)
	if err := ReLUInto(got, x); err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(t, got, want); d != 0 {
		t.Errorf("ReLUInto: max diff %g", d)
	}
	inPlace := x.Clone()
	ReLUInPlaceInfer(inPlace)
	if d := maxAbsDiff(t, inPlace, want); d != 0 {
		t.Errorf("ReLUInPlaceInfer: max diff %g", d)
	}

	// BatchNorm inference
	s := NewBatchNormState(4)
	for i := range s.RunningMean.Data() {
		s.RunningMean.Data()[i] = rng.NormFloat64()
		s.RunningVar.Data()[i] = 0.5 + rng.Float64()
		s.Gamma.Data()[i] = rng.NormFloat64()
		s.Beta.Data()[i] = rng.NormFloat64()
	}
	res, err := BatchNorm2D(x, s, false)
	if err != nil {
		t.Fatal(err)
	}
	bn := New(x.Shape()...)
	if err := BatchNorm2DInto(bn, x, s); err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(t, bn, res.Out); d != 0 {
		t.Errorf("BatchNorm2DInto: max diff %g", d)
	}

	// MaxPool (window partially and fully in padding via big padding)
	for _, p := range []PoolParams{
		{Kernel: 2, Stride: 2},
		{Kernel: 3, Stride: 2, Padding: 1},
		{Kernel: 2, Stride: 1, Padding: 2},
	} {
		mp, err := MaxPool2D(x, p)
		if err != nil {
			t.Fatal(err)
		}
		oh, ow := p.OutSize(x.Dim(2), x.Dim(3))
		mpi := New(x.Dim(0), x.Dim(1), oh, ow)
		if err := MaxPool2DInto(mpi, x, p); err != nil {
			t.Fatal(err)
		}
		if d := maxAbsDiff(t, mpi, mp.Out); d != 0 {
			t.Errorf("MaxPool2DInto %+v: max diff %g", p, d)
		}
	}

	// GlobalAvgPool
	gap, err := GlobalAvgPool2D(x)
	if err != nil {
		t.Fatal(err)
	}
	gapi := New(x.Dim(0), x.Dim(1))
	if err := GlobalAvgPool2DInto(gapi, x); err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(t, gapi, gap); d != 0 {
		t.Errorf("GlobalAvgPool2DInto: max diff %g", d)
	}

	// Linear
	xf := randTensor(rng, 5, 8)
	wt := randTensor(rng, 3, 8)
	bias := randTensor(rng, 3)
	lin, err := Linear(xf, wt, bias)
	if err != nil {
		t.Fatal(err)
	}
	lini := New(5, 3)
	if err := LinearInto(lini, xf, wt, bias); err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(t, lini, lin); d != 0 {
		t.Errorf("LinearInto: max diff %g", d)
	}
	Release(lin)
}

func TestRentReleaseSemantics(t *testing.T) {
	r := Rent(3, 4)
	for _, v := range r.Data() {
		if v != 0 {
			t.Fatal("Rent must return zeroed storage")
		}
	}
	r.Fill(7)
	Release(r)
	if r.Data() != nil {
		t.Fatal("Release must detach the data slice")
	}
	Release(r)       // double release is a no-op
	Release(nil)     // nil is a no-op
	Release(New(2))  // non-pooled is a no-op
	r2 := Rent(3, 4) // likely reuses the freed class; must come back zeroed
	for _, v := range r2.Data() {
		if v != 0 {
			t.Fatal("Rent after Release must return zeroed storage")
		}
	}
	// A clone of a pooled tensor must not inherit pooled-ness: releasing
	// the clone must not poison the freelist with the original's buffer.
	c := r2.Clone()
	Release(c) // no-op
	if c.Data() == nil {
		t.Fatal("Release must not detach a non-pooled clone")
	}
	Release(r2)

	rl := RentLike(New(2, 3, 4))
	if got := rl.Shape(); len(got) != 3 || got[0] != 2 || got[1] != 3 || got[2] != 4 {
		t.Fatalf("RentLike shape %v", got)
	}
	Release(rl)
}

func TestSetParallelismBounds(t *testing.T) {
	prev := SetParallelism(3)
	defer SetParallelism(prev)
	if got := Parallelism(); got != 3 {
		t.Fatalf("Parallelism() = %d, want 3", got)
	}
	if back := SetParallelism(0); back != 3 {
		t.Fatalf("SetParallelism returned %d, want previous 3", back)
	}
	if got := Parallelism(); got < 1 {
		t.Fatalf("Parallelism() = %d after reset to default, want >= 1", got)
	}
}
