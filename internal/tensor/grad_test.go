package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// numericalGrad estimates dLoss/dParam via central finite differences for
// the element at flat index i of param, where loss() recomputes the forward
// pass from current parameter values.
func numericalGrad(param *Tensor, i int, loss func() float64) float64 {
	const h = 1e-5
	orig := param.Data()[i]
	param.Data()[i] = orig + h
	lp := loss()
	param.Data()[i] = orig - h
	lm := loss()
	param.Data()[i] = orig
	return (lp - lm) / (2 * h)
}

func checkGrad(t *testing.T, name string, analytic *Tensor, param *Tensor, loss func() float64) {
	t.Helper()
	for i := range param.Data() {
		num := numericalGrad(param, i, loss)
		ana := analytic.Data()[i]
		scale := math.Max(1, math.Max(math.Abs(num), math.Abs(ana)))
		if math.Abs(num-ana)/scale > 1e-4 {
			t.Fatalf("%s grad[%d]: analytic %v vs numeric %v", name, i, ana, num)
		}
	}
}

func randomize(t *Tensor, rng *rand.Rand) {
	for i := range t.Data() {
		t.Data()[i] = rng.NormFloat64()
	}
}

func TestGradConv2D(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	p := Conv2DParams{InChannels: 2, OutChannels: 3, Kernel: 3, Stride: 2, Padding: 1}
	x := New(2, 2, 5, 5)
	w := New(3, 2, 3, 3)
	b := New(3)
	randomize(x, rng)
	randomize(w, rng)
	randomize(b, rng)
	labels := []int{1, 2}

	forward := func() float64 {
		y, err := Conv2D(x, w, b, p)
		if err != nil {
			t.Fatal(err)
		}
		pooled, err := GlobalAvgPool2D(y)
		if err != nil {
			t.Fatal(err)
		}
		ce, err := CrossEntropy(pooled, labels)
		if err != nil {
			t.Fatal(err)
		}
		return ce.Loss
	}

	// Analytic gradients.
	y, err := Conv2D(x, w, b, p)
	if err != nil {
		t.Fatal(err)
	}
	pooled, err := GlobalAvgPool2D(y)
	if err != nil {
		t.Fatal(err)
	}
	ce, err := CrossEntropy(pooled, labels)
	if err != nil {
		t.Fatal(err)
	}
	dPooled := ce.Backward()
	dy, err := GlobalAvgPool2DBackward(dPooled, y.Shape())
	if err != nil {
		t.Fatal(err)
	}
	grads, err := Conv2DBackward(dy, x, w, p, true)
	if err != nil {
		t.Fatal(err)
	}

	checkGrad(t, "conv.w", grads.DW, w, forward)
	checkGrad(t, "conv.b", grads.DB, b, forward)
	checkGrad(t, "conv.x", grads.DX, x, forward)
}

func TestGradLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	x := New(3, 4)
	w := New(5, 4)
	b := New(5)
	randomize(x, rng)
	randomize(w, rng)
	randomize(b, rng)
	labels := []int{0, 2, 4}

	forward := func() float64 {
		y, err := Linear(x, w, b)
		if err != nil {
			t.Fatal(err)
		}
		ce, err := CrossEntropy(y, labels)
		if err != nil {
			t.Fatal(err)
		}
		return ce.Loss
	}

	y, err := Linear(x, w, b)
	if err != nil {
		t.Fatal(err)
	}
	ce, err := CrossEntropy(y, labels)
	if err != nil {
		t.Fatal(err)
	}
	dy := ce.Backward()
	grads, err := LinearBackward(dy, x, w, true)
	if err != nil {
		t.Fatal(err)
	}

	checkGrad(t, "linear.w", grads.DW, w, forward)
	checkGrad(t, "linear.b", grads.DB, b, forward)
	checkGrad(t, "linear.x", grads.DX, x, forward)
}

func TestGradBatchNorm(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	x := New(3, 2, 3, 3)
	randomize(x, rng)
	st := NewBatchNormState(2)
	randomize(st.Gamma, rng)
	randomize(st.Beta, rng)
	labels := []int{0, 1, 0}

	forward := func() float64 {
		// Keep running stats fixed across evaluations: save and restore.
		rm, rv := st.RunningMean.Clone(), st.RunningVar.Clone()
		defer func() {
			copy(st.RunningMean.Data(), rm.Data())
			copy(st.RunningVar.Data(), rv.Data())
		}()
		res, err := BatchNorm2D(x, st, true)
		if err != nil {
			t.Fatal(err)
		}
		pooled, err := GlobalAvgPool2D(res.Out)
		if err != nil {
			t.Fatal(err)
		}
		ce, err := CrossEntropy(pooled, labels)
		if err != nil {
			t.Fatal(err)
		}
		return ce.Loss
	}

	res, err := BatchNorm2D(x, st, true)
	if err != nil {
		t.Fatal(err)
	}
	pooled, err := GlobalAvgPool2D(res.Out)
	if err != nil {
		t.Fatal(err)
	}
	ce, err := CrossEntropy(pooled, labels)
	if err != nil {
		t.Fatal(err)
	}
	dPooled := ce.Backward()
	dy, err := GlobalAvgPool2DBackward(dPooled, res.Out.Shape())
	if err != nil {
		t.Fatal(err)
	}
	grads, err := res.Backward(dy)
	if err != nil {
		t.Fatal(err)
	}

	checkGrad(t, "bn.gamma", grads.DGamma, st.Gamma, forward)
	checkGrad(t, "bn.beta", grads.DBeta, st.Beta, forward)
	checkGrad(t, "bn.x", grads.DX, x, forward)
}

func TestGradMaxPoolAndReLU(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	x := New(2, 2, 4, 4)
	randomize(x, rng)
	labels := []int{1, 0}

	forward := func() float64 {
		a, _ := ReLU(x)
		mp, err := MaxPool2D(a, PoolParams{Kernel: 2, Stride: 2})
		if err != nil {
			t.Fatal(err)
		}
		pooled, err := GlobalAvgPool2D(mp.Out)
		if err != nil {
			t.Fatal(err)
		}
		ce, err := CrossEntropy(pooled, labels)
		if err != nil {
			t.Fatal(err)
		}
		return ce.Loss
	}

	a, mask := ReLU(x)
	mp, err := MaxPool2D(a, PoolParams{Kernel: 2, Stride: 2})
	if err != nil {
		t.Fatal(err)
	}
	pooled, err := GlobalAvgPool2D(mp.Out)
	if err != nil {
		t.Fatal(err)
	}
	ce, err := CrossEntropy(pooled, labels)
	if err != nil {
		t.Fatal(err)
	}
	dPooled := ce.Backward()
	dmp, err := GlobalAvgPool2DBackward(dPooled, mp.Out.Shape())
	if err != nil {
		t.Fatal(err)
	}
	da, err := mp.Backward(dmp)
	if err != nil {
		t.Fatal(err)
	}
	dx, err := ReLUBackward(da, mask)
	if err != nil {
		t.Fatal(err)
	}

	// MaxPool argmax can flip under perturbation exactly at ties; random
	// normal data makes ties measure-zero, so the finite-difference check
	// is safe.
	checkGrad(t, "pool+relu.x", dx, x, forward)
}

func TestGradCrossEntropySumsToZeroPerRow(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	x := New(4, 6)
	randomize(x, rng)
	ce, err := CrossEntropy(x, []int{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	dx := ce.Backward()
	for i := 0; i < 4; i++ {
		s := 0.0
		for j := 0; j < 6; j++ {
			s += dx.At(i, j)
		}
		if math.Abs(s) > 1e-12 {
			t.Fatalf("CE grad row %d sums to %v, want 0", i, s)
		}
	}
}
