package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Linear computes y = x·Wᵀ + b for x (N, In), weight (Out, In) and bias
// (Out) (bias may be nil). The result has shape (N, Out).
func Linear(x, weight, bias *Tensor) (*Tensor, error) {
	if x.Rank() != 2 || weight.Rank() != 2 {
		return nil, fmt.Errorf("%w: linear needs rank-2 x and weight, got %v and %v", ErrShape, x.shape, weight.shape)
	}
	n, in := x.shape[0], x.shape[1]
	out, in2 := weight.shape[0], weight.shape[1]
	if in != in2 {
		return nil, fmt.Errorf("%w: linear input dim %d vs weight dim %d", ErrShape, in, in2)
	}
	if bias != nil && (bias.Rank() != 1 || bias.shape[0] != out) {
		return nil, fmt.Errorf("%w: linear bias shape %v, want [%d]", ErrShape, bias.shape, out)
	}
	y, err := MatMulTransB(x, weight)
	if err != nil {
		return nil, err
	}
	if bias != nil {
		for i := 0; i < n; i++ {
			row := y.data[i*out : (i+1)*out]
			for j := range row {
				row[j] += bias.data[j]
			}
		}
	}
	return y, nil
}

// LinearInto computes y = x·Wᵀ + b into dst (shape N×Out) — the
// destination-reuse variant of Linear.
func LinearInto(dst, x, weight, bias *Tensor) error {
	if x.Rank() != 2 || weight.Rank() != 2 {
		return fmt.Errorf("%w: linear needs rank-2 x and weight, got %v and %v", ErrShape, x.shape, weight.shape)
	}
	n, in := x.shape[0], x.shape[1]
	out, in2 := weight.shape[0], weight.shape[1]
	if in != in2 {
		return fmt.Errorf("%w: linear input dim %d vs weight dim %d", ErrShape, in, in2)
	}
	if bias != nil && (bias.Rank() != 1 || bias.shape[0] != out) {
		return fmt.Errorf("%w: linear bias shape %v, want [%d]", ErrShape, bias.shape, out)
	}
	if err := MatMulTransBInto(dst, x, weight); err != nil {
		return err
	}
	if bias != nil {
		for i := 0; i < n; i++ {
			row := dst.data[i*out : (i+1)*out]
			for j := range row {
				row[j] += bias.data[j]
			}
		}
	}
	return nil
}

// LinearGrads holds the gradients of a Linear call.
type LinearGrads struct {
	DX *Tensor
	DW *Tensor
	DB *Tensor // nil when the layer had no bias
}

// LinearBackward computes the gradients of Linear given upstream dy (N, Out).
func LinearBackward(dy, x, weight *Tensor, hasBias bool) (*LinearGrads, error) {
	n, in := x.shape[0], x.shape[1]
	out := weight.shape[0]
	if dy.Rank() != 2 || dy.shape[0] != n || dy.shape[1] != out {
		return nil, fmt.Errorf("%w: linear backward dy %v, want [%d %d]", ErrShape, dy.shape, n, out)
	}
	dx, err := MatMul(dy, weight) // (N,Out)·(Out,In) = (N,In)
	if err != nil {
		return nil, err
	}
	dw, err := MatMulTransA(dy, x) // dyᵀ·x = (Out,N)·(N,In)
	if err != nil {
		return nil, err
	}
	grads := &LinearGrads{DX: dx, DW: dw}
	if hasBias {
		db := New(out)
		for i := 0; i < n; i++ {
			row := dy.data[i*out : (i+1)*out]
			for j, g := range row {
				db.data[j] += g
			}
		}
		grads.DB = db
	}
	_ = in
	return grads, nil
}

// KaimingInit fills t with He-normal values appropriate for layers followed
// by ReLU: N(0, sqrt(2/fanIn)).
func KaimingInit(t *Tensor, fanIn int, rng *rand.Rand) {
	sd := math.Sqrt(2.0 / float64(fanIn))
	for i := range t.data {
		t.data[i] = rng.NormFloat64() * sd
	}
}

// XavierInit fills t with Glorot-uniform values in
// [-sqrt(6/(fanIn+fanOut)), +sqrt(6/(fanIn+fanOut))].
func XavierInit(t *Tensor, fanIn, fanOut int, rng *rand.Rand) {
	lim := math.Sqrt(6.0 / float64(fanIn+fanOut))
	for i := range t.data {
		t.data[i] = (rng.Float64()*2 - 1) * lim
	}
}
