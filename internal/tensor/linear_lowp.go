package tensor

import "fmt"

// Reduced-precision linear layers: x·Wᵀ + b from prepared narrow
// weights, the classifier-side counterpart of conv_lowp.go. Activations
// convert into typed scratch per call; each output element is one
// unrolled narrow dot product with bias-add fused into the float64
// writeback. The batch dimension of a classifier is small relative to
// the convolutions feeding it, so these kernels stay on the caller's
// goroutine — serial, and therefore trivially deterministic.

// checkLinearPrepared validates a prepared-weight linear call.
func checkLinearPrepared(dst, x, bias *Tensor, out, in int) (n int, err error) {
	if x.Rank() != 2 {
		return 0, fmt.Errorf("%w: linear needs rank-2 x, got %v", ErrShape, x.shape)
	}
	n = x.shape[0]
	if x.shape[1] != in {
		return 0, fmt.Errorf("%w: linear input dim %d vs weight dim %d", ErrShape, x.shape[1], in)
	}
	if bias != nil && (bias.Rank() != 1 || bias.shape[0] != out) {
		return 0, fmt.Errorf("%w: linear bias shape %v, want [%d]", ErrShape, bias.shape, out)
	}
	if dst != nil && (dst.Rank() != 2 || dst.shape[0] != n || dst.shape[1] != out) {
		return 0, fmt.Errorf("%w: linear dst %v, want [%d %d]", ErrShape, dst.shape, n, out)
	}
	return n, nil
}

// LinearF32 computes y = x·Wᵀ + b in float32 from a prepared weight; the
// result is pool-backed like Linear.
func LinearF32(x *Tensor, weight *LinearWeightsF32, bias *Tensor) (*Tensor, error) {
	n, err := checkLinearPrepared(nil, x, bias, weight.out, weight.in)
	if err != nil {
		return nil, err
	}
	y := rentRaw(n, weight.out)
	linearIntoF32(y.data, x, weight, bias, n)
	return y, nil
}

// LinearIntoF32 is the destination-reuse variant of LinearF32.
func LinearIntoF32(dst, x *Tensor, weight *LinearWeightsF32, bias *Tensor) error {
	n, err := checkLinearPrepared(dst, x, bias, weight.out, weight.in)
	if err != nil {
		return err
	}
	linearIntoF32(dst.data, x, weight, bias, n)
	return nil
}

func linearIntoF32(dst []float64, x *Tensor, weight *LinearWeightsF32, bias *Tensor, n int) {
	in, out := weight.in, weight.out
	x32 := scratchF32.get(n * in)
	toF32(x32, x.data)
	var biasData []float64
	if bias != nil {
		biasData = bias.data
	}
	for i := 0; i < n; i++ {
		ai := x32[i*in : (i+1)*in]
		di := dst[i*out : (i+1)*out]
		for j := 0; j < out; j++ {
			s := float64(dotF32(ai, weight.w[j*in:(j+1)*in]))
			if biasData != nil {
				s += biasData[j]
			}
			di[j] = s
		}
	}
	scratchF32.put(x32)
}

// LinearI8 computes y = x·Wᵀ + b in symmetric int8 with int32
// accumulation. xScale semantics match Conv2DI8 (<= 0 derives a dynamic
// per-row scale, keeping results independent of batch sharding).
func LinearI8(x *Tensor, weight *LinearWeightsI8, bias *Tensor, xScale float64) (*Tensor, error) {
	n, err := checkLinearPrepared(nil, x, bias, weight.out, weight.in)
	if err != nil {
		return nil, err
	}
	y := rentRaw(n, weight.out)
	linearIntoI8(y.data, x, weight, bias, n, xScale)
	return y, nil
}

// LinearIntoI8 is the destination-reuse variant of LinearI8.
func LinearIntoI8(dst, x *Tensor, weight *LinearWeightsI8, bias *Tensor, xScale float64) error {
	n, err := checkLinearPrepared(dst, x, bias, weight.out, weight.in)
	if err != nil {
		return err
	}
	linearIntoI8(dst.data, x, weight, bias, n, xScale)
	return nil
}

func linearIntoI8(dst []float64, x *Tensor, weight *LinearWeightsI8, bias *Tensor, n int, xScale float64) {
	in, out := weight.in, weight.out
	x8 := scratchI8.get(in)
	var biasData []float64
	if bias != nil {
		biasData = bias.data
	}
	for i := 0; i < n; i++ {
		xi := x.data[i*in : (i+1)*in]
		// Dynamic fallback quantizes per row so the result never depends
		// on which rows share a call (mirrors the conv per-image scale).
		sc := xScale
		if sc <= 0 {
			sc = SymmetricScale(xi)
		}
		QuantizeSymmetric(x8, xi, sc)
		ai := x8[:in]
		di := dst[i*out : (i+1)*out]
		for j := 0; j < out; j++ {
			s := float64(dotI8(ai, weight.w[j*in:(j+1)*in])) * (weight.scale[j] * sc)
			if biasData != nil {
				s += biasData[j]
			}
			di[j] = s
		}
	}
	scratchI8.put(x8)
}
