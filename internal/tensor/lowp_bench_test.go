package tensor

import (
	"fmt"
	"math/rand"
	"testing"
)

// Kernel-level precision benchmarks: the raw GEMM and Conv2D speed ratios
// the root-level BenchmarkMatMul/BenchmarkConv2DForward precision
// variants (and BENCH_infer.json) are built on.

func benchRand64(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	s := make([]float64, n)
	for i := range s {
		s[i] = rng.NormFloat64()
	}
	return s
}

func BenchmarkGemmPrecision(b *testing.B) {
	for _, n := range []int{64, 128, 256} {
		a64 := benchRand64(n*n, 1)
		b64 := benchRand64(n*n, 2)
		dst64 := make([]float64, n*n)
		a32 := make([]float32, n*n)
		b32 := make([]float32, n*n)
		dst32 := make([]float32, n*n)
		toF32(a32, a64)
		toF32(b32, b64)
		a8 := make([]int8, n*n)
		b8 := make([]int8, n*n)
		acc := make([]int32, n*n)
		QuantizeSymmetric(a8, a64, SymmetricScale(a64))
		QuantizeSymmetric(b8, b64, SymmetricScale(b64))

		for _, workers := range []int{1, 4} {
			tag := fmt.Sprintf("n%d/workers%d", n, workers)
			b.Run(tag+"/f64", func(b *testing.B) {
				defer SetParallelism(SetParallelism(workers))
				for i := 0; i < b.N; i++ {
					gemm(dst64, a64, b64, n, n, n)
				}
			})
			b.Run(tag+"/f32", func(b *testing.B) {
				defer SetParallelism(SetParallelism(workers))
				for i := 0; i < b.N; i++ {
					GemmF32(dst32, a32, b32, n, n, n)
				}
			})
			b.Run(tag+"/i8", func(b *testing.B) {
				defer SetParallelism(SetParallelism(workers))
				for i := 0; i < b.N; i++ {
					GemmI8(acc, a8, b8, n, n, n)
				}
			})
		}
	}
}

func mustBenchTensor(b *testing.B, data []float64, shape ...int) *Tensor {
	b.Helper()
	t, err := FromSlice(data, shape...)
	if err != nil {
		b.Fatal(err)
	}
	return t
}

func BenchmarkConvPrecision(b *testing.B) {
	cases := []struct{ n, ch, size int }{
		{1, 16, 16},
		{8, 16, 16},
		{8, 32, 32},
	}
	for _, c := range cases {
		p := Conv2DParams{InChannels: c.ch, OutChannels: 2 * c.ch, Kernel: 3, Stride: 1, Padding: 1}
		x := mustBenchTensor(b, benchRand64(c.n*c.ch*c.size*c.size, 3), c.n, c.ch, c.size, c.size)
		wt := mustBenchTensor(b, benchRand64(2*c.ch*c.ch*3*3, 4), 2*c.ch, c.ch, 3, 3)
		bias := mustBenchTensor(b, benchRand64(2*c.ch, 5), 2*c.ch)
		w32, err := PrepareConvWeightsF32(wt, p)
		if err != nil {
			b.Fatal(err)
		}
		w8, err := PrepareConvWeightsI8(wt, p)
		if err != nil {
			b.Fatal(err)
		}
		xScale := SymmetricScale(x.Data())
		oh, ow := p.OutSize(c.size, c.size)
		dst := New(c.n, 2*c.ch, oh, ow)

		tag := fmt.Sprintf("n%d_c%d_s%d", c.n, c.ch, c.size)
		b.Run(tag+"/f64", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := Conv2DInto(dst, x, wt, bias, p); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(tag+"/f32", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := Conv2DIntoF32(dst, x, w32, bias, p); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(tag+"/i8", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := Conv2DIntoI8(dst, x, w8, bias, p, xScale); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
