package tensor

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// Property tests for the reduced-precision kernels: f32 tracks the f64
// reference within a scaled 1e-4 tolerance, i8 reproduces the
// dequantized int32 reference exactly, both are bit-deterministic across
// worker counts, and the AVX2 and scalar paths agree bit-for-bit.

func randSlice64(rng *rand.Rand, n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = rng.NormFloat64()
	}
	return s
}

func randSlice8(rng *rand.Rand, n int) []int8 {
	s := make([]int8, n)
	for i := range s {
		s[i] = int8(rng.Intn(255) - 127)
	}
	return s
}

// close64 reports |got-want| <= tol*max(1, max|want|) elementwise.
func close64(got, want []float64, tol float64) (int, bool) {
	scale := 1.0
	for _, v := range want {
		if a := math.Abs(v); a > scale {
			scale = a
		}
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > tol*scale {
			return i, false
		}
	}
	return -1, true
}

func TestMatMulF32MatchesF64(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, dims := range [][3]int{{1, 1, 1}, {3, 5, 7}, {17, 9, 33}, {32, 144, 100}, {64, 64, 64}, {70, 130, 258}} {
		m, k, n := dims[0], dims[1], dims[2]
		a64 := randSlice64(rng, m*k)
		b64 := randSlice64(rng, k*n)
		want := make([]float64, m*n)
		matmulInto(want, a64, b64, m, k, n)

		a32 := make([]float32, m*k)
		b32 := make([]float32, k*n)
		toF32(a32, a64)
		toF32(b32, b64)
		got32 := make([]float32, m*n)
		GemmF32(got32, a32, b32, m, k, n)
		got := make([]float64, m*n)
		for i, v := range got32 {
			got[i] = float64(v)
		}
		if i, ok := close64(got, want, 1e-4); !ok {
			t.Errorf("m=%d k=%d n=%d: f32 GEMM diverges from f64 at %d: got %g want %g", m, k, n, i, got[i], want[i])
		}
	}
}

func TestMatMulLowpWorkerDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	m, k, n := 70, 150, 230
	a64 := randSlice64(rng, m*k)
	b64 := randSlice64(rng, k*n)
	a32 := make([]float32, m*k)
	b32 := make([]float32, k*n)
	toF32(a32, a64)
	toF32(b32, b64)
	a8 := randSlice8(rng, m*k)
	b8 := randSlice8(rng, k*n)

	ref32 := make([]float32, m*n)
	ref8 := make([]int32, m*n)
	func() {
		defer SetParallelism(SetParallelism(1))
		GemmF32(ref32, a32, b32, m, k, n)
		GemmI8(ref8, a8, b8, m, k, n)
	}()
	for _, workers := range []int{2, 3, 8} {
		got32 := make([]float32, m*n)
		got8 := make([]int32, m*n)
		func() {
			defer SetParallelism(SetParallelism(workers))
			GemmF32(got32, a32, b32, m, k, n)
			GemmI8(got8, a8, b8, m, k, n)
		}()
		for i := range ref32 {
			if got32[i] != ref32[i] {
				t.Fatalf("workers=%d: f32 GEMM not bit-identical at %d: %g vs %g", workers, i, got32[i], ref32[i])
			}
		}
		for i := range ref8 {
			if got8[i] != ref8[i] {
				t.Fatalf("workers=%d: i8 GEMM not identical at %d: %d vs %d", workers, i, got8[i], ref8[i])
			}
		}
	}
}

func TestMatMulLowpSIMDMatchesScalar(t *testing.T) {
	if !SIMDEnabled() {
		t.Skip("SIMD not active on this host")
	}
	rng := rand.New(rand.NewSource(13))
	for _, dims := range [][3]int{{5, 9, 23}, {33, 65, 129}, {64, 144, 256}} {
		m, k, n := dims[0], dims[1], dims[2]
		a64 := randSlice64(rng, m*k)
		b64 := randSlice64(rng, k*n)
		a32 := make([]float32, m*k)
		b32 := make([]float32, k*n)
		toF32(a32, a64)
		toF32(b32, b64)
		a8 := randSlice8(rng, m*k)
		b8 := randSlice8(rng, k*n)

		simd32 := make([]float32, m*n)
		simd8 := make([]int32, m*n)
		GemmF32(simd32, a32, b32, m, k, n)
		GemmI8(simd8, a8, b8, m, k, n)

		scalar32 := make([]float32, m*n)
		scalar8 := make([]int32, m*n)
		prev := useSIMD
		useSIMD = false
		GemmF32(scalar32, a32, b32, m, k, n)
		GemmI8(scalar8, a8, b8, m, k, n)
		useSIMD = prev

		for i := range simd32 {
			if simd32[i] != scalar32[i] {
				t.Fatalf("m=%d k=%d n=%d: AVX2 f32 differs from scalar at %d: %g vs %g", m, k, n, i, simd32[i], scalar32[i])
			}
		}
		for i := range simd8 {
			if simd8[i] != scalar8[i] {
				t.Fatalf("m=%d k=%d n=%d: AVX2 i8 differs from scalar at %d: %d vs %d", m, k, n, i, simd8[i], scalar8[i])
			}
		}
	}
}

func TestGemmI8ExactVsReference(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for _, dims := range [][3]int{{1, 1, 1}, {3, 7, 5}, {16, 144, 64}, {33, 100, 77}} {
		m, k, n := dims[0], dims[1], dims[2]
		a := randSlice8(rng, m*k)
		b := randSlice8(rng, k*n)
		got := make([]int32, m*n)
		GemmI8(got, a, b, m, k, n)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				var want int32
				for kk := 0; kk < k; kk++ {
					want += int32(a[i*k+kk]) * int32(b[kk*n+j])
				}
				if got[i*n+j] != want {
					t.Fatalf("m=%d k=%d n=%d: GemmI8[%d,%d] = %d, naive int32 = %d", m, k, n, i, j, got[i*n+j], want)
				}
			}
		}
	}
}

func lowpConvCase(t *testing.T, rng *rand.Rand, n, cin, cout, size, kernel, stride, pad int) (x, wt, bias *Tensor, p Conv2DParams) {
	t.Helper()
	p = Conv2DParams{InChannels: cin, OutChannels: cout, Kernel: kernel, Stride: stride, Padding: pad}
	var err error
	x, err = FromSlice(randSlice64(rng, n*cin*size*size), n, cin, size, size)
	if err != nil {
		t.Fatal(err)
	}
	wt, err = FromSlice(randSlice64(rng, cout*cin*kernel*kernel), cout, cin, kernel, kernel)
	if err != nil {
		t.Fatal(err)
	}
	bias, err = FromSlice(randSlice64(rng, cout), cout)
	if err != nil {
		t.Fatal(err)
	}
	return
}

func TestConv2DF32MatchesF64(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	cases := []struct{ n, cin, cout, size, kernel, stride, pad int }{
		{1, 3, 8, 9, 3, 1, 1},
		{2, 16, 32, 16, 3, 1, 1},
		{8, 16, 32, 16, 3, 1, 1}, // batch-sharded path
		{3, 8, 16, 11, 3, 2, 1},
	}
	for _, c := range cases {
		x, wt, bias, p := lowpConvCase(t, rng, c.n, c.cin, c.cout, c.size, c.kernel, c.stride, c.pad)
		want, err := Conv2D(x, wt, bias, p)
		if err != nil {
			t.Fatal(err)
		}
		w32, err := PrepareConvWeightsF32(wt, p)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Conv2DF32(x, w32, bias, p)
		if err != nil {
			t.Fatal(err)
		}
		if i, ok := close64(got.Data(), want.Data(), 1e-4); !ok {
			t.Errorf("case %+v: f32 conv diverges at %d: got %g want %g", c, i, got.Data()[i], want.Data()[i])
		}
		Release(want)
		Release(got)
	}
}

func TestConv2DI8ExactVsDequantReference(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	cases := []struct{ n, cin, cout, size, kernel, stride, pad int }{
		{1, 3, 8, 9, 3, 1, 1},
		{2, 8, 16, 12, 3, 1, 1},
		{8, 16, 32, 16, 3, 1, 1}, // batch-sharded path
	}
	for _, c := range cases {
		x, wt, bias, p := lowpConvCase(t, rng, c.n, c.cin, c.cout, c.size, c.kernel, c.stride, c.pad)
		w8, err := PrepareConvWeightsI8(wt, p)
		if err != nil {
			t.Fatal(err)
		}
		xScale := SymmetricScale(x.Data())
		got, err := Conv2DI8(x, w8, bias, p, xScale)
		if err != nil {
			t.Fatal(err)
		}

		// Reference: quantize with the same helpers, convolve naively in
		// int32, dequantize with the same per-channel scales. Must match
		// the kernel bit-for-bit.
		oh, ow := p.OutSize(c.size, c.size)
		xq := make([]int8, c.n*c.cin*c.size*c.size)
		QuantizeSymmetric(xq, x.Data(), xScale)
		gd := got.Data()
		for b := 0; b < c.n; b++ {
			for oc := 0; oc < c.cout; oc++ {
				for oy := 0; oy < oh; oy++ {
					for ox := 0; ox < ow; ox++ {
						var acc int32
						for ch := 0; ch < c.cin; ch++ {
							for ky := 0; ky < c.kernel; ky++ {
								for kx := 0; kx < c.kernel; kx++ {
									iy := oy*c.stride + ky - c.pad
									ix := ox*c.stride + kx - c.pad
									if iy < 0 || iy >= c.size || ix < 0 || ix >= c.size {
										continue
									}
									xv := xq[((b*c.cin+ch)*c.size+iy)*c.size+ix]
									wv := w8.w[((oc*c.cin+ch)*c.kernel+ky)*c.kernel+kx]
									acc += int32(xv) * int32(wv)
								}
							}
						}
						want := float64(acc)*(w8.scale[oc]*xScale) + bias.Data()[oc]
						idx := ((b*c.cout+oc)*oh+oy)*ow + ox
						if gd[idx] != want {
							t.Fatalf("case %+v: i8 conv [%d,%d,%d,%d] = %v, dequantized reference = %v",
								c, b, oc, oy, ox, gd[idx], want)
						}
					}
				}
			}
		}
		Release(got)
	}
}

func TestConv2DLowpWorkerDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	x, wt, bias, p := lowpConvCase(t, rng, 8, 16, 32, 16, 3, 1, 1)
	w32, err := PrepareConvWeightsF32(wt, p)
	if err != nil {
		t.Fatal(err)
	}
	w8, err := PrepareConvWeightsI8(wt, p)
	if err != nil {
		t.Fatal(err)
	}
	xScale := SymmetricScale(x.Data())

	run := func(workers int) (f32out, i8out []float64) {
		defer SetParallelism(SetParallelism(workers))
		a, err := Conv2DF32(x, w32, bias, p)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Conv2DI8(x, w8, bias, p, xScale)
		if err != nil {
			t.Fatal(err)
		}
		f32out = append([]float64(nil), a.Data()...)
		i8out = append([]float64(nil), b.Data()...)
		Release(a)
		Release(b)
		return
	}
	ref32, ref8 := run(1)
	for _, workers := range []int{2, 4, 8} {
		got32, got8 := run(workers)
		for i := range ref32 {
			if got32[i] != ref32[i] {
				t.Fatalf("workers=%d: f32 conv not bit-identical at %d", workers, i)
			}
		}
		for i := range ref8 {
			if got8[i] != ref8[i] {
				t.Fatalf("workers=%d: i8 conv not bit-identical at %d", workers, i)
			}
		}
	}
}

func TestLinearLowpMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	n, in, out := 5, 37, 19
	x, err := FromSlice(randSlice64(rng, n*in), n, in)
	if err != nil {
		t.Fatal(err)
	}
	wt, err := FromSlice(randSlice64(rng, out*in), out, in)
	if err != nil {
		t.Fatal(err)
	}
	bias, err := FromSlice(randSlice64(rng, out), out)
	if err != nil {
		t.Fatal(err)
	}

	want, err := Linear(x, wt, bias)
	if err != nil {
		t.Fatal(err)
	}
	lw32, err := PrepareLinearWeightsF32(wt)
	if err != nil {
		t.Fatal(err)
	}
	got32, err := LinearF32(x, lw32, bias)
	if err != nil {
		t.Fatal(err)
	}
	if i, ok := close64(got32.Data(), want.Data(), 1e-4); !ok {
		t.Errorf("f32 linear diverges at %d: got %g want %g", i, got32.Data()[i], want.Data()[i])
	}

	lw8, err := PrepareLinearWeightsI8(wt)
	if err != nil {
		t.Fatal(err)
	}
	xScale := SymmetricScale(x.Data())
	got8, err := LinearI8(x, lw8, bias, xScale)
	if err != nil {
		t.Fatal(err)
	}
	xq := make([]int8, n*in)
	QuantizeSymmetric(xq, x.Data(), xScale)
	for i := 0; i < n; i++ {
		for j := 0; j < out; j++ {
			var acc int32
			for kk := 0; kk < in; kk++ {
				acc += int32(xq[i*in+kk]) * int32(lw8.w[j*in+kk])
			}
			wantV := float64(acc)*(lw8.scale[j]*xScale) + bias.Data()[j]
			if got8.Data()[i*out+j] != wantV {
				t.Fatalf("i8 linear [%d,%d] = %v, reference = %v", i, j, got8.Data()[i*out+j], wantV)
			}
		}
	}
	Release(want)
	Release(got32)
	Release(got8)
}

func TestQuantizeSymmetricProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	src := randSlice64(rng, 513)
	scale := SymmetricScale(src)
	dst := make([]int8, len(src))
	QuantizeSymmetric(dst, src, scale)
	for i, q := range dst {
		if q > 127 || q < -127 {
			t.Fatalf("quantized value %d out of symmetric range at %d", q, i)
		}
		if src[i] == 0 && q != 0 {
			t.Fatalf("q(0) must be 0, got %d", q)
		}
		if err := math.Abs(float64(q)*scale - src[i]); err > scale/2+1e-12 {
			t.Fatalf("dequant error %g at %d exceeds scale/2=%g", err, i, scale/2)
		}
	}
	// Degenerate scale maps everything to zero.
	QuantizeSymmetric(dst, src, 0)
	for i, q := range dst {
		if q != 0 {
			t.Fatalf("scale<=0 should zero-fill, got %d at %d", q, i)
		}
	}
	if got, err := ParsePrecision("i8"); err != nil || got != I8 {
		t.Fatalf("ParsePrecision(i8) = %v, %v", got, err)
	}
	if _, err := ParsePrecision("f16"); err == nil {
		t.Fatal("ParsePrecision(f16) should fail")
	}
	for _, p := range []Precision{F64, F32, I8} {
		rt, err := ParsePrecision(p.String())
		if err != nil || rt != p {
			t.Fatalf("precision %v does not round-trip: %v, %v", p, rt, err)
		}
	}
	if F64.DeployedBytesPerParam() != 4 || F32.DeployedBytesPerParam() != 4 || I8.DeployedBytesPerParam() != 1 {
		t.Fatal("DeployedBytesPerParam: want 4/4/1 for f64/f32/i8")
	}
	_ = fmt.Sprintf("%v", F32) // Stringer smoke
}
