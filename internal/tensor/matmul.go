package tensor

import "fmt"

// GEMM tiling parameters. The kernels block the k and j loops so the
// active panel of B (gemmKC×gemmNC float64 ≈ 256 KiB) stays cache-
// resident while a row panel of the output is accumulated, and shard row
// panels of the output across the worker pool above a flop cutoff.
// Within one output element the k-summation always runs in ascending
// order, so the blocked and parallel kernels produce bit-identical
// results to the serial i-k-j loop regardless of tile sizes or worker
// count.
const (
	// gemmKC is the k-dimension tile length.
	gemmKC = 128
	// gemmNC is the j-dimension tile length.
	gemmNC = 256
	// gemmParallelCutoff is the m*k*n flop product below which GEMM
	// stays on the caller's goroutine: fork/join overhead dominates
	// under it.
	gemmParallelCutoff = 64 * 64 * 64
)

// MatMul computes C = A·B for rank-2 tensors A (m×k) and B (k×n).
func MatMul(a, b *Tensor) (*Tensor, error) {
	if a.Rank() != 2 || b.Rank() != 2 {
		return nil, fmt.Errorf("%w: matmul needs rank-2 tensors, got %v and %v", ErrShape, a.shape, b.shape)
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		return nil, fmt.Errorf("%w: matmul inner dims %d != %d", ErrShape, k, k2)
	}
	out := rentRaw(m, n)
	gemm(out.data, a.data, b.data, m, k, n)
	return out, nil
}

// MatMulInto computes dst = A·B, reusing dst's storage. dst must be a
// rank-2 m×n tensor; its previous contents are overwritten.
func MatMulInto(dst, a, b *Tensor) error {
	if a.Rank() != 2 || b.Rank() != 2 {
		return fmt.Errorf("%w: matmul needs rank-2 tensors, got %v and %v", ErrShape, a.shape, b.shape)
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		return fmt.Errorf("%w: matmul inner dims %d != %d", ErrShape, k, k2)
	}
	if dst.Rank() != 2 || dst.shape[0] != m || dst.shape[1] != n {
		return fmt.Errorf("%w: matmul dst %v, want [%d %d]", ErrShape, dst.shape, m, n)
	}
	gemm(dst.data, a.data, b.data, m, k, n)
	return nil
}

// gemm computes dst = A·B, picking the serial kernel for small products
// and sharding row panels across the worker pool for large ones.
func gemm(dst, a, b []float64, m, k, n int) {
	if Parallelism() == 1 || m*k*n < gemmParallelCutoff || m == 1 {
		matmulInto(dst, a, b, m, k, n)
		return
	}
	grain := gemmParallelCutoff / (k * n)
	if grain < 1 {
		grain = 1
	}
	parallelFor(m, grain, func(lo, hi int) {
		gemmPanel(dst, a, b, lo, hi, k, n)
	})
}

// matmulInto computes dst = A·B with A m×k and B k×n, both row-major.
// The i-k-j loop order keeps the inner loop streaming over contiguous
// rows of B and dst. This is the small-matrix fast path and the
// single-worker reference kernel: the inner loop is a branch-free
// multiply-accumulate (sparsity in pruned weights is not special-cased
// here — skipping zeros defeats auto-vectorization; the blocked kernel
// level is where structured sparsity would be exploited).
func matmulInto(dst, a, b []float64, m, k, n int) {
	for i := 0; i < m; i++ {
		di := dst[i*n : (i+1)*n]
		fill(di, 0)
		ai := a[i*k : (i+1)*k]
		for kk := 0; kk < k; kk++ {
			av := ai[kk]
			bk := b[kk*n : (kk+1)*n]
			for j, bv := range bk {
				di[j] += av * bv
			}
		}
	}
}

// gemmPanel computes rows [i0,i1) of dst = A·B with cache blocking over
// j (gemmNC) and k (gemmKC). Per output element the k loop still runs
// 0..k-1 in order: j/k tiling only reorders which elements are touched
// when, not the summation order, keeping results bit-identical to
// matmulInto.
func gemmPanel(dst, a, b []float64, i0, i1, k, n int) {
	for jb := 0; jb < n; jb += gemmNC {
		jEnd := jb + gemmNC
		if jEnd > n {
			jEnd = n
		}
		for i := i0; i < i1; i++ {
			fill(dst[i*n+jb:i*n+jEnd], 0)
		}
		for kb := 0; kb < k; kb += gemmKC {
			kEnd := kb + gemmKC
			if kEnd > k {
				kEnd = k
			}
			for i := i0; i < i1; i++ {
				di := dst[i*n+jb : i*n+jEnd]
				ai := a[i*k : (i+1)*k]
				for kk := kb; kk < kEnd; kk++ {
					av := ai[kk]
					bk := b[kk*n+jb : kk*n+jEnd]
					for j, bv := range bk {
						di[j] += av * bv
					}
				}
			}
		}
	}
}

// MatMulTransA computes C = Aᵀ·B for A (k×m) and B (k×n), yielding m×n.
func MatMulTransA(a, b *Tensor) (*Tensor, error) {
	if a.Rank() != 2 || b.Rank() != 2 {
		return nil, fmt.Errorf("%w: matmulTransA needs rank-2 tensors, got %v and %v", ErrShape, a.shape, b.shape)
	}
	k, m := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		return nil, fmt.Errorf("%w: matmulTransA inner dims %d != %d", ErrShape, k, k2)
	}
	out := rentRaw(m, n)
	gemmTransA(out.data, a.data, b.data, k, m, n)
	return out, nil
}

// MatMulTransAInto computes dst = Aᵀ·B into an existing m×n tensor.
func MatMulTransAInto(dst, a, b *Tensor) error {
	if a.Rank() != 2 || b.Rank() != 2 {
		return fmt.Errorf("%w: matmulTransA needs rank-2 tensors, got %v and %v", ErrShape, a.shape, b.shape)
	}
	k, m := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		return fmt.Errorf("%w: matmulTransA inner dims %d != %d", ErrShape, k, k2)
	}
	if dst.Rank() != 2 || dst.shape[0] != m || dst.shape[1] != n {
		return fmt.Errorf("%w: matmulTransA dst %v, want [%d %d]", ErrShape, dst.shape, m, n)
	}
	gemmTransA(dst.data, a.data, b.data, k, m, n)
	return nil
}

// gemmTransA computes dst (m×n) = Aᵀ·B for A k×m, B k×n. The serial
// kernel keeps the seed's kk-outer order (one row of A and B per step,
// streaming dst); the parallel variant shards dst rows, keeping the
// per-element kk-ascending summation order.
func gemmTransA(dst, a, b []float64, k, m, n int) {
	if Parallelism() == 1 || m*k*n < gemmParallelCutoff || m == 1 {
		fill(dst[:m*n], 0)
		for kk := 0; kk < k; kk++ {
			ak := a[kk*m : (kk+1)*m]
			bk := b[kk*n : (kk+1)*n]
			for i, av := range ak {
				di := dst[i*n : (i+1)*n]
				for j, bv := range bk {
					di[j] += av * bv
				}
			}
		}
		return
	}
	grain := gemmParallelCutoff / (k * n)
	if grain < 1 {
		grain = 1
	}
	parallelFor(m, grain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fill(dst[i*n:(i+1)*n], 0)
		}
		for kk := 0; kk < k; kk++ {
			bk := b[kk*n : (kk+1)*n]
			ak := a[kk*m : (kk+1)*m]
			for i := lo; i < hi; i++ {
				av := ak[i]
				di := dst[i*n : (i+1)*n]
				for j, bv := range bk {
					di[j] += av * bv
				}
			}
		}
	})
}

// MatMulTransB computes C = A·Bᵀ for A (m×k) and B (n×k), yielding m×n.
func MatMulTransB(a, b *Tensor) (*Tensor, error) {
	if a.Rank() != 2 || b.Rank() != 2 {
		return nil, fmt.Errorf("%w: matmulTransB needs rank-2 tensors, got %v and %v", ErrShape, a.shape, b.shape)
	}
	m, k := a.shape[0], a.shape[1]
	n, k2 := b.shape[0], b.shape[1]
	if k != k2 {
		return nil, fmt.Errorf("%w: matmulTransB inner dims %d != %d", ErrShape, k, k2)
	}
	out := rentRaw(m, n)
	gemmTransB(out.data, a.data, b.data, m, k, n)
	return out, nil
}

// MatMulTransBInto computes dst = A·Bᵀ into an existing m×n tensor.
func MatMulTransBInto(dst, a, b *Tensor) error {
	if a.Rank() != 2 || b.Rank() != 2 {
		return fmt.Errorf("%w: matmulTransB needs rank-2 tensors, got %v and %v", ErrShape, a.shape, b.shape)
	}
	m, k := a.shape[0], a.shape[1]
	n, k2 := b.shape[0], b.shape[1]
	if k != k2 {
		return fmt.Errorf("%w: matmulTransB inner dims %d != %d", ErrShape, k, k2)
	}
	if dst.Rank() != 2 || dst.shape[0] != m || dst.shape[1] != n {
		return fmt.Errorf("%w: matmulTransB dst %v, want [%d %d]", ErrShape, dst.shape, m, n)
	}
	gemmTransB(dst.data, a.data, b.data, m, k, n)
	return nil
}

// gemmTransB computes dst (m×n) = A·Bᵀ for A m×k, B n×k: independent
// row-dot-products, sharded across output rows when large. Each element
// is a single kk-ascending dot product in both paths, so results are
// bit-identical at any worker count.
func gemmTransB(dst, a, b []float64, m, k, n int) {
	if Parallelism() == 1 || m*k*n < gemmParallelCutoff || m == 1 {
		transBPanel(dst, a, b, 0, m, k, n)
		return
	}
	grain := gemmParallelCutoff / (k * n)
	if grain < 1 {
		grain = 1
	}
	parallelFor(m, grain, func(lo, hi int) {
		transBPanel(dst, a, b, lo, hi, k, n)
	})
}

// transBPanel computes dst rows [lo,hi) of A·Bᵀ as row dot products. A
// top-level function (not a closure) so the serial path stays
// allocation-free.
func transBPanel(dst, a, b []float64, lo, hi, k, n int) {
	for i := lo; i < hi; i++ {
		ai := a[i*k : (i+1)*k]
		di := dst[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			bj := b[j*k : (j+1)*k]
			s := 0.0
			for kk, av := range ai {
				s += av * bj[kk]
			}
			di[j] = s
		}
	}
}

// Transpose returns the transpose of a rank-2 tensor.
func Transpose(a *Tensor) (*Tensor, error) {
	if a.Rank() != 2 {
		return nil, fmt.Errorf("%w: transpose needs rank-2, got %v", ErrShape, a.shape)
	}
	m, n := a.shape[0], a.shape[1]
	out := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.data[j*m+i] = a.data[i*n+j]
		}
	}
	return out, nil
}
