package tensor

import "fmt"

// MatMul computes C = A·B for rank-2 tensors A (m×k) and B (k×n).
func MatMul(a, b *Tensor) (*Tensor, error) {
	if a.Rank() != 2 || b.Rank() != 2 {
		return nil, fmt.Errorf("%w: matmul needs rank-2 tensors, got %v and %v", ErrShape, a.shape, b.shape)
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		return nil, fmt.Errorf("%w: matmul inner dims %d != %d", ErrShape, k, k2)
	}
	out := New(m, n)
	matmulInto(out.data, a.data, b.data, m, k, n)
	return out, nil
}

// matmulInto computes dst = A·B with A m×k and B k×n, both row-major.
// The i-k-j loop order keeps the inner loop streaming over contiguous rows
// of B and dst, which matters for the profiler's timing fidelity.
func matmulInto(dst, a, b []float64, m, k, n int) {
	for i := 0; i < m; i++ {
		di := dst[i*n : (i+1)*n]
		for j := range di {
			di[j] = 0
		}
		ai := a[i*k : (i+1)*k]
		for kk := 0; kk < k; kk++ {
			av := ai[kk]
			if av == 0 {
				continue
			}
			bk := b[kk*n : (kk+1)*n]
			for j, bv := range bk {
				di[j] += av * bv
			}
		}
	}
}

// MatMulTransA computes C = Aᵀ·B for A (k×m) and B (k×n), yielding m×n.
func MatMulTransA(a, b *Tensor) (*Tensor, error) {
	if a.Rank() != 2 || b.Rank() != 2 {
		return nil, fmt.Errorf("%w: matmulTransA needs rank-2 tensors, got %v and %v", ErrShape, a.shape, b.shape)
	}
	k, m := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		return nil, fmt.Errorf("%w: matmulTransA inner dims %d != %d", ErrShape, k, k2)
	}
	out := New(m, n)
	for kk := 0; kk < k; kk++ {
		ak := a.data[kk*m : (kk+1)*m]
		bk := b.data[kk*n : (kk+1)*n]
		for i, av := range ak {
			if av == 0 {
				continue
			}
			di := out.data[i*n : (i+1)*n]
			for j, bv := range bk {
				di[j] += av * bv
			}
		}
	}
	return out, nil
}

// MatMulTransB computes C = A·Bᵀ for A (m×k) and B (n×k), yielding m×n.
func MatMulTransB(a, b *Tensor) (*Tensor, error) {
	if a.Rank() != 2 || b.Rank() != 2 {
		return nil, fmt.Errorf("%w: matmulTransB needs rank-2 tensors, got %v and %v", ErrShape, a.shape, b.shape)
	}
	m, k := a.shape[0], a.shape[1]
	n, k2 := b.shape[0], b.shape[1]
	if k != k2 {
		return nil, fmt.Errorf("%w: matmulTransB inner dims %d != %d", ErrShape, k, k2)
	}
	out := New(m, n)
	for i := 0; i < m; i++ {
		ai := a.data[i*k : (i+1)*k]
		di := out.data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			bj := b.data[j*k : (j+1)*k]
			s := 0.0
			for kk, av := range ai {
				s += av * bj[kk]
			}
			di[j] = s
		}
	}
	return out, nil
}

// Transpose returns the transpose of a rank-2 tensor.
func Transpose(a *Tensor) (*Tensor, error) {
	if a.Rank() != 2 {
		return nil, fmt.Errorf("%w: transpose needs rank-2, got %v", ErrShape, a.shape)
	}
	m, n := a.shape[0], a.shape[1]
	out := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.data[j*m+i] = a.data[i*n+j]
		}
	}
	return out, nil
}
