package tensor

// Float32 GEMM: the same panel/shard structure as the float64 kernels in
// matmul.go, with two deliberate differences. First, operands are packed
// float32, so the cache-resident B panel and the streamed A/dst rows move
// half the bytes — the dominant win on a memory-bound kernel. Second, the
// k loop is unrolled four-wide with the partial products summed before
// touching dst, quartering the dst load/store traffic. The per-element
// summation grouping depends only on the fixed gemmKC tiling (never on
// worker count), so results are bit-identical at any parallelism, just
// not bit-identical to the f64 kernel (property tests bound the relative
// error instead).

// GemmF32 computes dst = A·B for row-major float32 A (m×k) and B (k×n).
// dst must have at least m*n elements; previous contents are overwritten.
// Large products shard row panels across the worker pool; the summation
// grouping is independent of worker count, so results are deterministic.
func GemmF32(dst, a, b []float32, m, k, n int) {
	if Parallelism() == 1 || m*k*n < gemmParallelCutoff || m == 1 {
		gemmPanel32(dst, a, b, 0, m, k, n)
		return
	}
	grain := gemmParallelCutoff / (k * n)
	if grain < 1 {
		grain = 1
	}
	parallelFor(m, grain, func(lo, hi int) {
		gemmPanel32(dst, a, b, lo, hi, k, n)
	})
}

// gemmPanel32 computes rows [i0,i1) of dst = A·B with j/k cache blocking
// (the f32 B tile is gemmKC×gemmNC×4 B ≈ 128 KiB) and a 4-wide k unroll.
// The unroll groups each element's k sum as fixed (kb-aligned) quartets,
// so the grouping — and therefore the float result — depends only on k
// and the tile constants, never on the row sharding.
func gemmPanel32(dst, a, b []float32, i0, i1, k, n int) {
	for jb := 0; jb < n; jb += gemmNC {
		jEnd := jb + gemmNC
		if jEnd > n {
			jEnd = n
		}
		for i := i0; i < i1; i++ {
			fill32(dst[i*n+jb:i*n+jEnd], 0)
		}
		for kb := 0; kb < k; kb += gemmKC {
			kEnd := kb + gemmKC
			if kEnd > k {
				kEnd = k
			}
			for i := i0; i < i1; i++ {
				di := dst[i*n+jb : i*n+jEnd]
				ai := a[i*k : (i+1)*k]
				kk := kb
				for ; kk+3 < kEnd; kk += 4 {
					quadAxpy32(di,
						b[kk*n+jb:kk*n+jEnd],
						b[(kk+1)*n+jb:(kk+1)*n+jEnd],
						b[(kk+2)*n+jb:(kk+2)*n+jEnd],
						b[(kk+3)*n+jb:(kk+3)*n+jEnd],
						ai[kk], ai[kk+1], ai[kk+2], ai[kk+3])
				}
				for ; kk < kEnd; kk++ {
					av := ai[kk]
					bk := b[kk*n+jb : kk*n+jEnd]
					bk = bk[:len(di)]
					for j := range di {
						di[j] += av * bk[j]
					}
				}
			}
		}
	}
}

// quadAxpy32 applies four fused axpy rows to one dst strip:
// di[j] += a0·b0[j] + a1·b1[j] + a2·b2[j] + a3·b3[j], left-associated.
// The AVX2 path computes the exact same association with VMULPS+VADDPS
// (no FMA), so both paths produce identical bits.
func quadAxpy32(di, b0, b1, b2, b3 []float32, a0, a1, a2, a3 float32) {
	b0 = b0[:len(di)]
	b1 = b1[:len(di)]
	b2 = b2[:len(di)]
	b3 = b3[:len(di)]
	j := 0
	if useSIMD && len(di) >= 8 {
		aa := [4]float32{a0, a1, a2, a3}
		j = len(di) &^ 7
		quadAxpyF32AVX2(&di[0], &b0[0], &b1[0], &b2[0], &b3[0], &aa[0], j)
	}
	for ; j < len(di); j++ {
		di[j] += a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j]
	}
}

// dotF32 is the 4-wide-unrolled float32 dot product used by the linear
// (A·Bᵀ) path; the fixed quartet grouping keeps it deterministic.
func dotF32(a, b []float32) float32 {
	b = b[:len(a)]
	var s0, s1, s2, s3 float32
	kk := 0
	for ; kk+3 < len(a); kk += 4 {
		s0 += a[kk] * b[kk]
		s1 += a[kk+1] * b[kk+1]
		s2 += a[kk+2] * b[kk+2]
		s3 += a[kk+3] * b[kk+3]
	}
	var s float32
	for ; kk < len(a); kk++ {
		s += a[kk] * b[kk]
	}
	return s0 + s1 + s2 + s3 + s
}
