package tensor

// Int8 GEMM with int32 accumulation: the integer half of the quantized
// kernel layer. Operands are symmetric-quantized int8 (no zero points),
// products are exact in int32 (127·127·k fits for any k the engine
// meets: k < 2^17 leaves headroom of 2^31/127² ≈ 133k), and integer
// addition is associative — so unlike the float kernels the result is
// exactly equal to the naive triple loop regardless of tiling, unroll or
// worker count. The B panel is one byte per element (gemmKC×gemmNC ≈
// 32 KiB, L1-resident), which is where the speedup over f64 comes from.

// GemmI8 computes dst = A·B for row-major int8 A (m×k) and B (k×n),
// accumulating exactly in int32. dst must have at least m*n elements;
// previous contents are overwritten. Results are exact (and therefore
// identical at any worker count).
func GemmI8(dst []int32, a, b []int8, m, k, n int) {
	if Parallelism() == 1 || m*k*n < gemmParallelCutoff || m == 1 {
		gemmPanel8(dst, a, b, 0, m, k, n)
		return
	}
	grain := gemmParallelCutoff / (k * n)
	if grain < 1 {
		grain = 1
	}
	parallelFor(m, grain, func(lo, hi int) {
		gemmPanel8(dst, a, b, lo, hi, k, n)
	})
}

// gemmPanel8 computes rows [i0,i1) of dst = A·B with the same j/k
// blocking as the float kernels and a 4-wide k unroll. Sign extension of
// the int8 loads is a single instruction; the four partial products per
// element are summed before the dst update, quartering accumulator
// traffic.
func gemmPanel8(dst []int32, a, b []int8, i0, i1, k, n int) {
	for jb := 0; jb < n; jb += gemmNC {
		jEnd := jb + gemmNC
		if jEnd > n {
			jEnd = n
		}
		for i := i0; i < i1; i++ {
			fillI32(dst[i*n+jb:i*n+jEnd], 0)
		}
		for kb := 0; kb < k; kb += gemmKC {
			kEnd := kb + gemmKC
			if kEnd > k {
				kEnd = k
			}
			for i := i0; i < i1; i++ {
				di := dst[i*n+jb : i*n+jEnd]
				ai := a[i*k : (i+1)*k]
				kk := kb
				for ; kk+3 < kEnd; kk += 4 {
					quadAxpy8(di,
						b[kk*n+jb:kk*n+jEnd],
						b[(kk+1)*n+jb:(kk+1)*n+jEnd],
						b[(kk+2)*n+jb:(kk+2)*n+jEnd],
						b[(kk+3)*n+jb:(kk+3)*n+jEnd],
						int32(ai[kk]), int32(ai[kk+1]), int32(ai[kk+2]), int32(ai[kk+3]))
				}
				for ; kk < kEnd; kk++ {
					av := int32(ai[kk])
					bk := b[kk*n+jb : kk*n+jEnd]
					bk = bk[:len(di)]
					for j := range di {
						di[j] += av * int32(bk[j])
					}
				}
			}
		}
	}
}

// quadAxpy8 applies four fused int8 axpy rows to one int32 dst strip:
// di[j] += a0·b0[j] + ... + a3·b3[j], exact in int32 on both the AVX2
// and scalar paths.
func quadAxpy8(di []int32, b0, b1, b2, b3 []int8, a0, a1, a2, a3 int32) {
	b0 = b0[:len(di)]
	b1 = b1[:len(di)]
	b2 = b2[:len(di)]
	b3 = b3[:len(di)]
	j := 0
	if useSIMD && len(di) >= 8 {
		aa := [4]int32{a0, a1, a2, a3}
		j = len(di) &^ 7
		quadAxpyI8AVX2(&di[0], &b0[0], &b1[0], &b2[0], &b3[0], &aa[0], j)
	}
	for ; j < len(di); j++ {
		di[j] += a0*int32(b0[j]) + a1*int32(b1[j]) + a2*int32(b2[j]) + a3*int32(b3[j])
	}
}

// dotI8 is the unrolled int8 dot product (exact in int32) used by the
// linear (A·Bᵀ) path.
func dotI8(a, b []int8) int32 {
	b = b[:len(a)]
	var s0, s1, s2, s3 int32
	kk := 0
	for ; kk+3 < len(a); kk += 4 {
		s0 += int32(a[kk]) * int32(b[kk])
		s1 += int32(a[kk+1]) * int32(b[kk+1])
		s2 += int32(a[kk+2]) * int32(b[kk+2])
		s3 += int32(a[kk+3]) * int32(b[kk+3])
	}
	var s int32
	for ; kk < len(a); kk++ {
		s += int32(a[kk]) * int32(b[kk])
	}
	return s0 + s1 + s2 + s3 + s
}
