package tensor

import (
	"fmt"
	"math"
)

// BatchNormState holds the learned affine parameters and running statistics
// of a 2-D batch-normalization layer over C channels.
type BatchNormState struct {
	Gamma       *Tensor // scale, shape (C)
	Beta        *Tensor // shift, shape (C)
	RunningMean *Tensor // shape (C)
	RunningVar  *Tensor // shape (C)
	Momentum    float64 // running-stat update factor, typically 0.1
	Eps         float64 // numerical stabilizer, typically 1e-5
}

// NewBatchNormState returns a state with gamma=1, beta=0, zero running mean
// and unit running variance.
func NewBatchNormState(channels int) *BatchNormState {
	s := &BatchNormState{
		Gamma:       New(channels),
		Beta:        New(channels),
		RunningMean: New(channels),
		RunningVar:  New(channels),
		Momentum:    0.1,
		Eps:         1e-5,
	}
	s.Gamma.Fill(1)
	s.RunningVar.Fill(1)
	return s
}

// Channels returns the number of normalized channels.
func (s *BatchNormState) Channels() int { return s.Gamma.Dim(0) }

// BatchNormResult caches the intermediates needed for the backward pass.
type BatchNormResult struct {
	Out   *Tensor
	xhat  []float64
	invSD []float64 // per channel 1/sqrt(var+eps)
	state *BatchNormState
	n     int
	c     int
	hw    int
}

// BatchNorm2D normalizes an NCHW batch per channel. In training mode the
// batch statistics are used and the running statistics updated; in
// evaluation mode the stored running statistics are used.
func BatchNorm2D(x *Tensor, s *BatchNormState, training bool) (*BatchNormResult, error) {
	if x.Rank() != 4 {
		return nil, fmt.Errorf("%w: batchnorm input must be rank-4, got %v", ErrShape, x.shape)
	}
	n, c, h, w := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	if c != s.Channels() {
		return nil, fmt.Errorf("%w: batchnorm input has %d channels, state has %d", ErrShape, c, s.Channels())
	}
	hw := h * w
	out := New(x.shape...)
	res := &BatchNormResult{
		Out:   out,
		xhat:  make([]float64, x.Len()),
		invSD: make([]float64, c),
		state: s,
		n:     n, c: c, hw: hw,
	}
	cnt := float64(n * hw)
	for ch := 0; ch < c; ch++ {
		var mean, variance float64
		if training {
			sum := 0.0
			for b := 0; b < n; b++ {
				plane := x.data[(b*c+ch)*hw : (b*c+ch+1)*hw]
				for _, v := range plane {
					sum += v
				}
			}
			mean = sum / cnt
			sq := 0.0
			for b := 0; b < n; b++ {
				plane := x.data[(b*c+ch)*hw : (b*c+ch+1)*hw]
				for _, v := range plane {
					d := v - mean
					sq += d * d
				}
			}
			variance = sq / cnt
			s.RunningMean.data[ch] = (1-s.Momentum)*s.RunningMean.data[ch] + s.Momentum*mean
			s.RunningVar.data[ch] = (1-s.Momentum)*s.RunningVar.data[ch] + s.Momentum*variance
		} else {
			mean = s.RunningMean.data[ch]
			variance = s.RunningVar.data[ch]
		}
		inv := 1.0 / math.Sqrt(variance+s.Eps)
		res.invSD[ch] = inv
		g, bshift := s.Gamma.data[ch], s.Beta.data[ch]
		for b := 0; b < n; b++ {
			off := (b*c + ch) * hw
			plane := x.data[off : off+hw]
			xh := res.xhat[off : off+hw]
			o := out.data[off : off+hw]
			for i, v := range plane {
				xn := (v - mean) * inv
				xh[i] = xn
				o[i] = g*xn + bshift
			}
		}
	}
	return res, nil
}

// BatchNorm2DInto normalizes an NCHW batch per channel using the stored
// running statistics, writing the result into dst (same shape as x). It
// is the inference fast path of BatchNorm2D: no result struct, no xhat
// cache, no running-stat update, so it allocates nothing and is safe for
// concurrent use over a shared state. Values match BatchNorm2D's
// evaluation mode bit for bit.
func BatchNorm2DInto(dst, x *Tensor, s *BatchNormState) error {
	if x.Rank() != 4 {
		return fmt.Errorf("%w: batchnorm input must be rank-4, got %v", ErrShape, x.shape)
	}
	n, c, h, w := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	if c != s.Channels() {
		return fmt.Errorf("%w: batchnorm input has %d channels, state has %d", ErrShape, c, s.Channels())
	}
	if !dst.SameShape(x) {
		return fmt.Errorf("%w: batchnorm dst %v, want %v", ErrShape, dst.shape, x.shape)
	}
	hw := h * w
	for ch := 0; ch < c; ch++ {
		mean := s.RunningMean.data[ch]
		inv := 1.0 / math.Sqrt(s.RunningVar.data[ch]+s.Eps)
		g, bshift := s.Gamma.data[ch], s.Beta.data[ch]
		for b := 0; b < n; b++ {
			off := (b*c + ch) * hw
			plane := x.data[off : off+hw]
			o := dst.data[off : off+hw]
			for i, v := range plane {
				xn := (v - mean) * inv
				o[i] = g*xn + bshift
			}
		}
	}
	return nil
}

// BatchNormGrads carries the gradients of a training-mode batch norm.
type BatchNormGrads struct {
	DX     *Tensor
	DGamma *Tensor
	DBeta  *Tensor
}

// Backward computes training-mode gradients for the batch norm given the
// upstream gradient dy.
func (r *BatchNormResult) Backward(dy *Tensor) (*BatchNormGrads, error) {
	if !dy.SameShape(r.Out) {
		return nil, fmt.Errorf("%w: batchnorm backward dy %v, want %v", ErrShape, dy.shape, r.Out.shape)
	}
	n, c, hw := r.n, r.c, r.hw
	cnt := float64(n * hw)
	grads := &BatchNormGrads{
		DX:     New(r.Out.shape...),
		DGamma: New(c),
		DBeta:  New(c),
	}
	for ch := 0; ch < c; ch++ {
		var sumDY, sumDYxh float64
		for b := 0; b < n; b++ {
			off := (b*c + ch) * hw
			dyp := dy.data[off : off+hw]
			xh := r.xhat[off : off+hw]
			for i, g := range dyp {
				sumDY += g
				sumDYxh += g * xh[i]
			}
		}
		grads.DGamma.data[ch] = sumDYxh
		grads.DBeta.data[ch] = sumDY
		g := r.state.Gamma.data[ch]
		inv := r.invSD[ch]
		for b := 0; b < n; b++ {
			off := (b*c + ch) * hw
			dyp := dy.data[off : off+hw]
			xh := r.xhat[off : off+hw]
			dxp := grads.DX.data[off : off+hw]
			for i, gy := range dyp {
				dxp[i] = g * inv * (gy - sumDY/cnt - xh[i]*sumDYxh/cnt)
			}
		}
	}
	return grads, nil
}
