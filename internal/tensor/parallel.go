package tensor

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// The tensor engine shards large kernels (GEMM row panels, convolution
// batches) across a package-level pool of persistent worker goroutines.
// The pool is bounded: at most Parallelism()-1 workers participate in any
// one kernel (the caller's goroutine always runs the first shard), and
// worker goroutines are started lazily and reused across calls, so the
// steady-state hot path submits closures to an already-running pool
// instead of spawning goroutines.
//
// Kernels submitted to the pool must be leaves: they must not call
// parallelFor themselves, or a worker could block waiting on shards that
// are queued behind it. Compound operations (convolution over a batch)
// therefore choose ONE axis to parallelize and run everything below it
// on the serial kernels.

// maxPoolWorkers caps the persistent worker count regardless of
// SetParallelism, bounding goroutine growth on large GOMAXPROCS hosts.
const maxPoolWorkers = 64

var (
	parallelism atomic.Int32

	poolMu    sync.Mutex
	poolTasks chan func()
	poolLive  int
)

func init() {
	parallelism.Store(int32(defaultParallelism()))
}

func defaultParallelism() int {
	n := runtime.GOMAXPROCS(0)
	if n > maxPoolWorkers {
		n = maxPoolWorkers
	}
	if n < 1 {
		n = 1
	}
	return n
}

// SetParallelism sets the number of goroutines (including the caller)
// that large kernels may use, and returns the previous value. n <= 0
// resets to runtime.GOMAXPROCS(0). Parallelism 1 forces every kernel
// onto the caller's goroutine with the exact seed summation order, which
// is what the profiler uses for reproducible single-worker c(s)
// measurements and what tests use for determinism.
func SetParallelism(n int) int {
	if n <= 0 {
		n = defaultParallelism()
	}
	if n > maxPoolWorkers {
		n = maxPoolWorkers
	}
	return int(parallelism.Swap(int32(n)))
}

// Parallelism returns the current kernel parallelism.
func Parallelism() int { return int(parallelism.Load()) }

// ensureWorkers starts persistent pool workers until at least n exist.
func ensureWorkers(n int) {
	if n > maxPoolWorkers {
		n = maxPoolWorkers
	}
	poolMu.Lock()
	if poolTasks == nil {
		poolTasks = make(chan func(), 4*maxPoolWorkers)
	}
	for poolLive < n {
		poolLive++
		go func() {
			for f := range poolTasks {
				f()
			}
		}()
	}
	poolMu.Unlock()
}

// shardSpan describes one contiguous index range of a parallelFor.
type shardSpan struct{ lo, hi int }

// shardPlan splits [0,n) into at most Parallelism() contiguous spans of
// at least grain elements each. The span boundaries depend only on n,
// grain and the configured parallelism, so a given configuration always
// produces the same work decomposition (and therefore the same
// floating-point reduction groupings).
func shardPlan(n, grain int) []shardSpan {
	return shardPlanBounded(n, grain, Parallelism())
}

// shardPlanBounded is shardPlan with an explicit goroutine bound instead
// of the pool-wide Parallelism(). workers <= 0 falls back to the
// configured parallelism.
func shardPlanBounded(n, grain, workers int) []shardSpan {
	if n <= 0 {
		return nil
	}
	if grain < 1 {
		grain = 1
	}
	p := workers
	if p <= 0 {
		p = Parallelism()
	}
	if p > maxPoolWorkers {
		p = maxPoolWorkers
	}
	if max := (n + grain - 1) / grain; p > max {
		p = max
	}
	if p < 1 {
		p = 1
	}
	spans := make([]shardSpan, 0, p)
	chunk := (n + p - 1) / p
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		spans = append(spans, shardSpan{lo, hi})
	}
	return spans
}

// runShards executes a precomputed shard plan: shard 0 on the caller's
// goroutine, the rest on the worker pool. fn receives the shard index
// and its bounds, and must not call parallelFor/runShards itself.
func runShards(spans []shardSpan, fn func(si, lo, hi int)) {
	switch len(spans) {
	case 0:
		return
	case 1:
		fn(0, spans[0].lo, spans[0].hi)
		return
	}
	ensureWorkers(len(spans) - 1)
	var wg sync.WaitGroup
	wg.Add(len(spans) - 1)
	for si, s := range spans[1:] {
		si, s := si+1, s
		poolTasks <- func() {
			defer wg.Done()
			fn(si, s.lo, s.hi)
		}
	}
	fn(0, spans[0].lo, spans[0].hi)
	wg.Wait()
}

// parallelFor runs fn over [0,n) split into contiguous shards of at
// least grain elements. The caller's goroutine runs the first shard;
// the rest go to the worker pool. fn must not call parallelFor (see the
// package comment on leaf kernels). With parallelism 1 (or a single
// shard) fn runs inline exactly once over the full range.
func parallelFor(n, grain int, fn func(lo, hi int)) {
	runShards(shardPlan(n, grain), func(_, lo, hi int) { fn(lo, hi) })
}

// ParallelFor runs fn over [0,n) split into contiguous shards of at
// least grain elements each, using at most workers goroutines (the
// caller's included; workers <= 0 uses the configured Parallelism()).
// The shard boundaries depend only on (n, grain, workers), never on
// scheduling, so callers that need deterministic work decomposition get
// it at any pool size. fn must be a leaf: it must not call ParallelFor
// or any parallel tensor kernel itself, or a pool worker could block on
// shards queued behind it. This is the solver layer's entry point into
// the tensor worker pool — clique construction and shard-level branch
// search reuse the inference pool instead of spawning their own.
func ParallelFor(n, grain, workers int, fn func(lo, hi int)) {
	runShards(shardPlanBounded(n, grain, workers), func(_, lo, hi int) { fn(lo, hi) })
}
