package tensor

import "fmt"

// PoolParams describes a square pooling window with symmetric stride and
// padding.
type PoolParams struct {
	Kernel  int
	Stride  int
	Padding int
}

// OutSize returns the pooled spatial size for an input of size h×w.
func (p PoolParams) OutSize(h, w int) (int, int) {
	oh := (h+2*p.Padding-p.Kernel)/p.Stride + 1
	ow := (w+2*p.Padding-p.Kernel)/p.Stride + 1
	return oh, ow
}

func (p PoolParams) validate() error {
	switch {
	case p.Kernel <= 0:
		return fmt.Errorf("%w: pool kernel must be positive, got %d", ErrShape, p.Kernel)
	case p.Stride <= 0:
		return fmt.Errorf("%w: pool stride must be positive, got %d", ErrShape, p.Stride)
	case p.Padding < 0:
		return fmt.Errorf("%w: pool padding must be non-negative, got %d", ErrShape, p.Padding)
	}
	return nil
}

// MaxPool2DResult carries the pooled output and the argmax indices needed
// for the backward pass.
type MaxPool2DResult struct {
	Out     *Tensor
	argmax  []int // flat input offset chosen for each output element
	inShape []int
}

// MaxPool2D applies max pooling over an NCHW batch.
func MaxPool2D(x *Tensor, p PoolParams) (*MaxPool2DResult, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	if x.Rank() != 4 {
		return nil, fmt.Errorf("%w: maxpool input must be rank-4, got %v", ErrShape, x.shape)
	}
	n, c, h, w := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	oh, ow := p.OutSize(h, w)
	if oh <= 0 || ow <= 0 {
		return nil, fmt.Errorf("%w: maxpool output %dx%d for input %dx%d", ErrShape, oh, ow, h, w)
	}
	out := New(n, c, oh, ow)
	argmax := make([]int, out.Len())
	oi := 0
	for b := 0; b < n; b++ {
		for ch := 0; ch < c; ch++ {
			plane := x.data[(b*c+ch)*h*w : (b*c+ch+1)*h*w]
			planeOff := (b*c + ch) * h * w
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					best := 0.0
					bestIdx := -1
					for ky := 0; ky < p.Kernel; ky++ {
						iy := oy*p.Stride + ky - p.Padding
						if iy < 0 || iy >= h {
							continue
						}
						for kx := 0; kx < p.Kernel; kx++ {
							ix := ox*p.Stride + kx - p.Padding
							if ix < 0 || ix >= w {
								continue
							}
							v := plane[iy*w+ix]
							if bestIdx < 0 || v > best {
								best = v
								bestIdx = planeOff + iy*w + ix
							}
						}
					}
					if bestIdx < 0 {
						// Window fully in padding: output zero with no gradient route.
						out.data[oi] = 0
						argmax[oi] = -1
					} else {
						out.data[oi] = best
						argmax[oi] = bestIdx
					}
					oi++
				}
			}
		}
	}
	return &MaxPool2DResult{Out: out, argmax: argmax, inShape: x.Shape()}, nil
}

// MaxPool2DInto applies max pooling into dst (shape N×C×OH×OW) without
// recording argmax indices — the inference fast path of MaxPool2D.
// Output values match MaxPool2D bit for bit.
func MaxPool2DInto(dst, x *Tensor, p PoolParams) error {
	if err := p.validate(); err != nil {
		return err
	}
	if x.Rank() != 4 {
		return fmt.Errorf("%w: maxpool input must be rank-4, got %v", ErrShape, x.shape)
	}
	n, c, h, w := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	oh, ow := p.OutSize(h, w)
	if oh <= 0 || ow <= 0 {
		return fmt.Errorf("%w: maxpool output %dx%d for input %dx%d", ErrShape, oh, ow, h, w)
	}
	if dst.Rank() != 4 || dst.shape[0] != n || dst.shape[1] != c || dst.shape[2] != oh || dst.shape[3] != ow {
		return fmt.Errorf("%w: maxpool dst %v, want [%d %d %d %d]", ErrShape, dst.shape, n, c, oh, ow)
	}
	oi := 0
	for b := 0; b < n; b++ {
		for ch := 0; ch < c; ch++ {
			plane := x.data[(b*c+ch)*h*w : (b*c+ch+1)*h*w]
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					best := 0.0
					found := false
					for ky := 0; ky < p.Kernel; ky++ {
						iy := oy*p.Stride + ky - p.Padding
						if iy < 0 || iy >= h {
							continue
						}
						for kx := 0; kx < p.Kernel; kx++ {
							ix := ox*p.Stride + kx - p.Padding
							if ix < 0 || ix >= w {
								continue
							}
							v := plane[iy*w+ix]
							if !found || v > best {
								best = v
								found = true
							}
						}
					}
					if !found {
						best = 0 // window fully in padding
					}
					dst.data[oi] = best
					oi++
				}
			}
		}
	}
	return nil
}

// GlobalAvgPool2DInto averages each channel plane into dst (shape N×C) —
// the destination-reuse variant of GlobalAvgPool2D.
func GlobalAvgPool2DInto(dst, x *Tensor) error {
	if x.Rank() != 4 {
		return fmt.Errorf("%w: global avgpool input must be rank-4, got %v", ErrShape, x.shape)
	}
	n, c, h, w := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	if dst.Rank() != 2 || dst.shape[0] != n || dst.shape[1] != c {
		return fmt.Errorf("%w: global avgpool dst %v, want [%d %d]", ErrShape, dst.shape, n, c)
	}
	area := float64(h * w)
	for b := 0; b < n; b++ {
		for ch := 0; ch < c; ch++ {
			plane := x.data[(b*c+ch)*h*w : (b*c+ch+1)*h*w]
			s := 0.0
			for _, v := range plane {
				s += v
			}
			dst.data[b*c+ch] = s / area
		}
	}
	return nil
}

// Backward routes the upstream gradient dy to the argmax positions.
func (r *MaxPool2DResult) Backward(dy *Tensor) (*Tensor, error) {
	if !dy.SameShape(r.Out) {
		return nil, fmt.Errorf("%w: maxpool backward dy %v, want %v", ErrShape, dy.shape, r.Out.shape)
	}
	dx := New(r.inShape...)
	for i, src := range r.argmax {
		if src >= 0 {
			dx.data[src] += dy.data[i]
		}
	}
	return dx, nil
}

// GlobalAvgPool2D averages each channel plane to a single value, producing
// an (N, C) tensor from an (N, C, H, W) input.
func GlobalAvgPool2D(x *Tensor) (*Tensor, error) {
	if x.Rank() != 4 {
		return nil, fmt.Errorf("%w: global avgpool input must be rank-4, got %v", ErrShape, x.shape)
	}
	n, c, h, w := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	out := New(n, c)
	area := float64(h * w)
	for b := 0; b < n; b++ {
		for ch := 0; ch < c; ch++ {
			plane := x.data[(b*c+ch)*h*w : (b*c+ch+1)*h*w]
			s := 0.0
			for _, v := range plane {
				s += v
			}
			out.data[b*c+ch] = s / area
		}
	}
	return out, nil
}

// GlobalAvgPool2DBackward spreads the upstream (N, C) gradient uniformly
// over each channel plane of the original (N, C, H, W) input shape.
func GlobalAvgPool2DBackward(dy *Tensor, inShape []int) (*Tensor, error) {
	if len(inShape) != 4 {
		return nil, fmt.Errorf("%w: global avgpool backward input shape %v", ErrShape, inShape)
	}
	n, c, h, w := inShape[0], inShape[1], inShape[2], inShape[3]
	if dy.Rank() != 2 || dy.shape[0] != n || dy.shape[1] != c {
		return nil, fmt.Errorf("%w: global avgpool backward dy %v, want [%d %d]", ErrShape, dy.shape, n, c)
	}
	dx := New(inShape...)
	inv := 1.0 / float64(h*w)
	for b := 0; b < n; b++ {
		for ch := 0; ch < c; ch++ {
			g := dy.data[b*c+ch] * inv
			plane := dx.data[(b*c+ch)*h*w : (b*c+ch+1)*h*w]
			for i := range plane {
				plane[i] = g
			}
		}
	}
	return dx, nil
}
