package tensor

import "fmt"

// Precision selects the arithmetic a kernel runs at. The engine's
// interchange type stays dense float64 (every Tensor is f64, so layer
// chaining, batch norm and the training path are untouched); reduced
// precision lives inside the GEMM/Conv2D kernels, which convert
// activations at their edges from typed scratch and hold pre-converted
// weight images. F32 halves the memory traffic of the dominant kernels;
// I8 runs symmetric-quantized integer GEMM with int32 accumulation and
// per-output-channel weight scales, cutting traffic up to 8x.
type Precision uint8

// Precision tiers. The zero value is full float64 — existing code that
// never mentions precision keeps its exact behavior.
const (
	F64 Precision = iota
	F32
	I8
)

// String implements fmt.Stringer using the catalog suffix spelling
// ("f64", "f32", "i8").
func (p Precision) String() string {
	switch p {
	case F64:
		return "f64"
	case F32:
		return "f32"
	case I8:
		return "i8"
	default:
		return fmt.Sprintf("precision(%d)", uint8(p))
	}
}

// ParsePrecision parses the String spelling of a precision tier.
func ParsePrecision(s string) (Precision, error) {
	switch s {
	case "f64", "":
		return F64, nil
	case "f32":
		return F32, nil
	case "i8":
		return I8, nil
	default:
		return F64, fmt.Errorf("tensor: unknown precision %q (want f64|f32|i8)", s)
	}
}

// DeployedBytesPerParam is the per-parameter footprint a block deployed
// at this precision is charged: int8 weights cost 1 byte, every float
// tier costs 4 (the paper's cost tables charge float32 deployment even
// for f64 compute, and the seed calibration depends on that).
func (p Precision) DeployedBytesPerParam() int64 {
	if p == I8 {
		return 1
	}
	return 4
}

// Valid reports whether p is one of the defined tiers.
func (p Precision) Valid() bool { return p <= I8 }
