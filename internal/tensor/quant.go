package tensor

import (
	"fmt"
	"math"
)

// Symmetric int8 quantization: q = clamp(round(v/scale), -127..127) with
// scale = maxAbs/127 and no zero point, so dequantization is a single
// multiply and q(0) == 0 exactly (zero padding stays zero through
// im2col). Weights are quantized per output channel — each output row of
// the GEMM gets its own scale, which is what keeps per-channel dynamic
// range loss out of the accumulation — while activations use one
// per-tensor scale (dynamic per call until a calibration pass pins it).
// Rounding is ties-to-even (math.RoundToEven is a single instruction on
// amd64/arm64); every quantizer in the package uses the same helper so
// reference implementations in tests reproduce kernels exactly.

// QuantizeSymmetric writes the symmetric int8 quantization of src under
// the given scale into dst (len(dst) >= len(src)). A scale <= 0 maps
// everything to zero.
func QuantizeSymmetric(dst []int8, src []float64, scale float64) {
	if scale <= 0 {
		fillI8(dst[:len(src)], 0)
		return
	}
	inv := 1 / scale
	dst = dst[:len(src)]
	for i, v := range src {
		q := math.RoundToEven(v * inv)
		if q > 127 {
			q = 127
		} else if q < -127 {
			q = -127
		}
		dst[i] = int8(q)
	}
}

// SymmetricScale returns the symmetric quantization scale maxAbs/127 for
// the given data (0 for all-zero data).
func SymmetricScale(data []float64) float64 {
	return sliceMaxAbs(data) / 127
}

// sliceMaxAbs returns max_i |s[i]| (0 for empty slices).
func sliceMaxAbs(s []float64) float64 {
	m := 0.0
	for _, v := range s {
		if v < 0 {
			v = -v
		}
		if v > m {
			m = v
		}
	}
	return m
}

// ConvWeightsF32 is a convolution weight pre-converted to packed float32
// (Cout×patch row-major, the GEMM layout). Layers build it once per
// weight update and reuse it across Forward calls.
type ConvWeightsF32 struct {
	w          []float32
	out, patch int
}

// PrepareConvWeightsF32 converts a (Cout, Cin, K, K) weight tensor for
// the float32 convolution kernel.
func PrepareConvWeightsF32(weight *Tensor, p Conv2DParams) (*ConvWeightsF32, error) {
	if err := checkConvWeight(weight, p); err != nil {
		return nil, err
	}
	patch := p.InChannels * p.Kernel * p.Kernel
	cw := &ConvWeightsF32{w: make([]float32, p.OutChannels*patch), out: p.OutChannels, patch: patch}
	toF32(cw.w, weight.data)
	return cw, nil
}

// ConvWeightsI8 is a convolution weight symmetric-quantized to int8 with
// one scale per output channel.
type ConvWeightsI8 struct {
	w          []int8
	scale      []float64 // len Cout: dequant multiplier per output row
	out, patch int
}

// PrepareConvWeightsI8 quantizes a (Cout, Cin, K, K) weight tensor per
// output channel for the int8 convolution kernel.
func PrepareConvWeightsI8(weight *Tensor, p Conv2DParams) (*ConvWeightsI8, error) {
	if err := checkConvWeight(weight, p); err != nil {
		return nil, err
	}
	patch := p.InChannels * p.Kernel * p.Kernel
	cw := &ConvWeightsI8{
		w:     make([]int8, p.OutChannels*patch),
		scale: make([]float64, p.OutChannels),
		out:   p.OutChannels,
		patch: patch,
	}
	for oc := 0; oc < p.OutChannels; oc++ {
		row := weight.data[oc*patch : (oc+1)*patch]
		sc := SymmetricScale(row)
		cw.scale[oc] = sc
		QuantizeSymmetric(cw.w[oc*patch:(oc+1)*patch], row, sc)
	}
	return cw, nil
}

// checkConvWeight validates a weight tensor against the conv params.
func checkConvWeight(weight *Tensor, p Conv2DParams) error {
	if err := p.validate(); err != nil {
		return err
	}
	if weight.Rank() != 4 || weight.shape[0] != p.OutChannels || weight.shape[1] != p.InChannels ||
		weight.shape[2] != p.Kernel || weight.shape[3] != p.Kernel {
		return fmt.Errorf("%w: conv weight shape %v, want %v", ErrShape, weight.shape,
			[]int{p.OutChannels, p.InChannels, p.Kernel, p.Kernel})
	}
	return nil
}

// LinearWeightsF32 is a linear weight (Out×In) pre-converted to float32.
type LinearWeightsF32 struct {
	w       []float32
	out, in int
}

// PrepareLinearWeightsF32 converts a rank-2 (Out, In) weight tensor for
// the float32 linear kernel.
func PrepareLinearWeightsF32(weight *Tensor) (*LinearWeightsF32, error) {
	if weight.Rank() != 2 {
		return nil, fmt.Errorf("%w: linear weight must be rank-2, got %v", ErrShape, weight.shape)
	}
	lw := &LinearWeightsF32{
		w:   make([]float32, len(weight.data)),
		out: weight.shape[0],
		in:  weight.shape[1],
	}
	toF32(lw.w, weight.data)
	return lw, nil
}

// LinearWeightsI8 is a linear weight symmetric-quantized to int8 with one
// scale per output row.
type LinearWeightsI8 struct {
	w       []int8
	scale   []float64
	out, in int
}

// PrepareLinearWeightsI8 quantizes a rank-2 (Out, In) weight tensor per
// output row for the int8 linear kernel.
func PrepareLinearWeightsI8(weight *Tensor) (*LinearWeightsI8, error) {
	if weight.Rank() != 2 {
		return nil, fmt.Errorf("%w: linear weight must be rank-2, got %v", ErrShape, weight.shape)
	}
	out, in := weight.shape[0], weight.shape[1]
	lw := &LinearWeightsI8{
		w:     make([]int8, out*in),
		scale: make([]float64, out),
		out:   out,
		in:    in,
	}
	for oc := 0; oc < out; oc++ {
		row := weight.data[oc*in : (oc+1)*in]
		sc := SymmetricScale(row)
		lw.scale[oc] = sc
		QuantizeSymmetric(lw.w[oc*in:(oc+1)*in], row, sc)
	}
	return lw, nil
}
