package tensor

import (
	"math/bits"
	"sync"
)

// Scratch arenas: freelists of float64 slices (bucketed by power-of-two
// capacity) and of Tensor headers. The convolution and GEMM kernels draw
// their im2col/col2im patch buffers and per-shard gradient accumulators
// from here, and the inference forward path rents whole activation
// tensors, so a steady-state Forward performs no heap allocation. The
// freelists are mutex-guarded rather than sync.Pool-based so that Get/Put
// themselves stay allocation-free (sync.Pool boxes the slice header on
// every Put).

// maxScratchClass bounds the pooled capacity classes: slices larger than
// 2^maxScratchClass elements (2 GiB of float64) are never pooled.
const maxScratchClass = 28

// maxFreePerClass bounds retention per size class so transient peaks
// (e.g. one huge batch) do not pin memory forever.
const maxFreePerClass = 32

type scratchClass struct {
	mu   sync.Mutex
	free [][]float64
}

var scratch [maxScratchClass + 1]scratchClass

// sizeClass returns the smallest c with 1<<c >= n.
func sizeClass(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// getF64 returns a length-n float64 slice with power-of-two capacity,
// reusing pooled storage when available. Contents are NOT zeroed.
func getF64(n int) []float64 {
	if n <= 0 {
		return nil
	}
	c := sizeClass(n)
	if c > maxScratchClass {
		return make([]float64, n)
	}
	sc := &scratch[c]
	sc.mu.Lock()
	if last := len(sc.free) - 1; last >= 0 {
		s := sc.free[last]
		sc.free = sc.free[:last]
		sc.mu.Unlock()
		return s[:n]
	}
	sc.mu.Unlock()
	return make([]float64, n, 1<<c)
}

// putF64 returns a slice obtained from getF64 to its size class. Slices
// with non-power-of-two capacity (not ours) are dropped silently.
func putF64(s []float64) {
	c := cap(s)
	if c == 0 || c&(c-1) != 0 {
		return
	}
	cls := bits.Len(uint(c)) - 1
	if cls > maxScratchClass {
		return
	}
	sc := &scratch[cls]
	sc.mu.Lock()
	if len(sc.free) < maxFreePerClass {
		sc.free = append(sc.free, s[:c])
	}
	sc.mu.Unlock()
}

// fill sets every element of dst to v. It is the dedicated zeroing/reset
// helper of the kernels: a bare loop the compiler recognizes (and, for
// v == 0, lowers to memclr), keeping per-call zeroing out of the dense
// inner loops.
func fill(dst []float64, v float64) {
	for i := range dst {
		dst[i] = v
	}
}

// tensorFree recycles Tensor headers (struct plus shape slice) so Rent
// does not allocate at steady state.
var tensorFree struct {
	mu   sync.Mutex
	free []*Tensor
}

// rentRaw returns a pooled tensor with unspecified contents. Internal
// kernels that fully overwrite their destination use it to skip the
// Rent zeroing pass.
func rentRaw(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic("tensor: non-positive dimension in Rent")
		}
		n *= d
	}
	tensorFree.mu.Lock()
	var t *Tensor
	if last := len(tensorFree.free) - 1; last >= 0 {
		t = tensorFree.free[last]
		tensorFree.free = tensorFree.free[:last]
	}
	tensorFree.mu.Unlock()
	if t == nil {
		t = &Tensor{}
	}
	t.shape = append(t.shape[:0], shape...)
	t.data = getF64(n)
	t.pooled = true
	return t
}

// Rent returns a zero-filled tensor whose backing storage comes from the
// package scratch pool. It is shape-compatible with New but intended for
// short-lived activations: pass the tensor to Release when it is no
// longer referenced and its storage is recycled. A rented tensor that is
// never released is simply reclaimed by the garbage collector.
func Rent(shape ...int) *Tensor {
	t := rentRaw(shape...)
	fill(t.data, 0)
	return t
}

// RentLike returns a zero-filled pooled tensor with u's shape.
func RentLike(u *Tensor) *Tensor {
	t := rentRaw(u.shape...)
	fill(t.data, 0)
	return t
}

// Release returns a rented tensor's storage to the scratch pool. It is a
// no-op for nil tensors, tensors not obtained from Rent (e.g. New or
// FromSlice results, or views), and tensors already released, so chain
// code can call it unconditionally. The tensor must not be used — and no
// view of it may exist — after Release.
func Release(t *Tensor) {
	if t == nil || !t.pooled || t.data == nil {
		return
	}
	putF64(t.data)
	t.data = nil
	t.pooled = false
	tensorFree.mu.Lock()
	if len(tensorFree.free) < maxFreePerClass {
		tensorFree.free = append(tensorFree.free, t)
	}
	tensorFree.mu.Unlock()
}
