package tensor

import (
	"math/bits"
	"sync"
)

// Typed scratch arenas for the reduced-precision kernels: the same
// power-of-two freelist discipline as the float64 pool in scratch.go,
// instantiated per element type. The f32/i8 convolution paths rent their
// converted-image, im2col and accumulator buffers here, so a quantized
// Forward stays allocation-free at steady state exactly like the f64
// path.
type typedClass[T any] struct {
	mu   sync.Mutex
	free [][]T
}

type typedPool[T any] struct {
	classes [maxScratchClass + 1]typedClass[T]
}

// get returns a length-n slice with power-of-two capacity, reusing pooled
// storage when available. Contents are NOT zeroed.
func (p *typedPool[T]) get(n int) []T {
	if n <= 0 {
		return nil
	}
	c := sizeClass(n)
	if c > maxScratchClass {
		return make([]T, n)
	}
	sc := &p.classes[c]
	sc.mu.Lock()
	if last := len(sc.free) - 1; last >= 0 {
		s := sc.free[last]
		sc.free = sc.free[:last]
		sc.mu.Unlock()
		return s[:n]
	}
	sc.mu.Unlock()
	return make([]T, n, 1<<c)
}

// put returns a slice obtained from get to its size class. Slices with
// non-power-of-two capacity (not ours) are dropped silently.
func (p *typedPool[T]) put(s []T) {
	c := cap(s)
	if c == 0 || c&(c-1) != 0 {
		return
	}
	cls := bits.Len(uint(c)) - 1
	if cls > maxScratchClass {
		return
	}
	sc := &p.classes[cls]
	sc.mu.Lock()
	if len(sc.free) < maxFreePerClass {
		sc.free = append(sc.free, s[:c])
	}
	sc.mu.Unlock()
}

var (
	scratchF32 typedPool[float32]
	scratchI8  typedPool[int8]
	scratchI32 typedPool[int32]
)

// fill32 is fill for float32 scratch (memclr for v == 0).
func fill32(dst []float32, v float32) {
	for i := range dst {
		dst[i] = v
	}
}

// fillI32 is fill for int32 accumulators.
func fillI32(dst []int32, v int32) {
	for i := range dst {
		dst[i] = v
	}
}

// fillI8 is fill for int8 scratch.
func fillI8(dst []int8, v int8) {
	for i := range dst {
		dst[i] = v
	}
}

// toF32 narrows src into dst (len(dst) >= len(src) elements are written
// for i < len(src)). The f32 conv path converts each image once here, so
// the 9x-overlapping im2col copy below it moves 4-byte floats.
func toF32(dst []float32, src []float64) {
	for i, v := range src {
		dst[i] = float32(v)
	}
}
