//go:build amd64

package tensor

import "os"

// AVX2 fast paths for the reduced-precision kernels. The assembly
// implements the SAME fused quad-axpy the scalar unrolled loops compute —
// per element di[j] + (((a0·b0[j] + a1·b1[j]) + a2·b2[j]) + a3·b3[j])
// with identical association — so the SIMD and scalar paths are
// bit-identical and every determinism property holds on both. The binary
// stays GOAMD64=v1 portable: AVX2 is detected at startup via CPUID (incl.
// the OSXSAVE/XGETBV dance for OS YMM-state support) and the scalar
// kernels remain the fallback. OFFLOADNN_NO_SIMD=1 forces the fallback,
// which tests use to compare the two paths.

// cpuidAsm executes CPUID for the given leaf/subleaf.
func cpuidAsm(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

// xgetbvAsm reads XCR0 (requires OSXSAVE, checked by the caller).
func xgetbvAsm() (eax, edx uint32)

// quadAxpyF32AVX2 computes dst[j] += a[0]*b0[j] + a[1]*b1[j] +
// a[2]*b2[j] + a[3]*b3[j] (left-associated) for j in [0,n); n must be a
// multiple of 8 and > 0.
//
//go:noescape
func quadAxpyF32AVX2(dst, b0, b1, b2, b3 *float32, a *float32, n int)

// quadAxpyI8AVX2 computes dst[j] += a[0]*int32(b0[j]) + ... +
// a[3]*int32(b3[j]) exactly in int32 for j in [0,n); n must be a
// multiple of 8 and > 0.
//
//go:noescape
func quadAxpyI8AVX2(dst *int32, b0, b1, b2, b3 *int8, a *int32, n int)

// useSIMD gates the AVX2 kernels; fixed at init so the choice never
// changes mid-run.
var useSIMD = os.Getenv("OFFLOADNN_NO_SIMD") == "" && detectAVX2()

func detectAVX2() bool {
	maxLeaf, _, _, _ := cpuidAsm(0, 0)
	if maxLeaf < 7 {
		return false
	}
	// OS must have enabled XMM+YMM state saving before AVX is usable.
	_, _, ecx, _ := cpuidAsm(1, 0)
	const osxsave = 1 << 27
	if ecx&osxsave == 0 {
		return false
	}
	if xcr0, _ := xgetbvAsm(); xcr0&0x6 != 0x6 {
		return false
	}
	_, ebx, _, _ := cpuidAsm(7, 0)
	const avx2 = 1 << 5
	return ebx&avx2 != 0
}

// SIMDEnabled reports whether the AVX2 kernel paths are active (always
// false off amd64 or under OFFLOADNN_NO_SIMD=1).
func SIMDEnabled() bool { return useSIMD }
