//go:build amd64

#include "textflag.h"

// CPUID/XGETBV feature probes (see detectAVX2 in simd_amd64.go).

// func cpuidAsm(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidAsm(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbvAsm() (eax, edx uint32)
TEXT ·xgetbvAsm(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func quadAxpyF32AVX2(dst, b0, b1, b2, b3 *float32, a *float32, n int)
//
// dst[j] += a[0]*b0[j] + a[1]*b1[j] + a[2]*b2[j] + a[3]*b3[j] for
// j in [0,n), n a positive multiple of 8. VMULPS+VADDPS (not FMA) in the
// scalar loop's left-associated order, so results are bit-identical to
// the pure-Go fallback.
TEXT ·quadAxpyF32AVX2(SB), NOSPLIT, $0-56
	MOVQ dst+0(FP), DI
	MOVQ b0+8(FP), R8
	MOVQ b1+16(FP), R9
	MOVQ b2+24(FP), R10
	MOVQ b3+32(FP), R11
	MOVQ a+40(FP), SI
	MOVQ n+48(FP), CX
	VBROADCASTSS (SI), Y8
	VBROADCASTSS 4(SI), Y9
	VBROADCASTSS 8(SI), Y10
	VBROADCASTSS 12(SI), Y11
	XORQ AX, AX
	MOVQ CX, DX
	ANDQ $-16, DX
	CMPQ DX, $0
	JE   f32loop8

f32loop16:
	// Two 8-lane groups per iteration for ILP across the add chains.
	VMOVUPS (R8)(AX*4), Y1
	VMOVUPS 32(R8)(AX*4), Y5
	VMULPS  Y8, Y1, Y1
	VMULPS  Y8, Y5, Y5
	VMOVUPS (R9)(AX*4), Y2
	VMOVUPS 32(R9)(AX*4), Y6
	VMULPS  Y9, Y2, Y2
	VMULPS  Y9, Y6, Y6
	VADDPS  Y2, Y1, Y1
	VADDPS  Y6, Y5, Y5
	VMOVUPS (R10)(AX*4), Y3
	VMOVUPS 32(R10)(AX*4), Y7
	VMULPS  Y10, Y3, Y3
	VMULPS  Y10, Y7, Y7
	VADDPS  Y3, Y1, Y1
	VADDPS  Y7, Y5, Y5
	VMOVUPS (R11)(AX*4), Y4
	VMOVUPS 32(R11)(AX*4), Y12
	VMULPS  Y11, Y4, Y4
	VMULPS  Y11, Y12, Y12
	VADDPS  Y4, Y1, Y1
	VADDPS  Y12, Y5, Y5
	VADDPS  (DI)(AX*4), Y1, Y1
	VADDPS  32(DI)(AX*4), Y5, Y5
	VMOVUPS Y1, (DI)(AX*4)
	VMOVUPS Y5, 32(DI)(AX*4)
	ADDQ    $16, AX
	CMPQ    AX, DX
	JL      f32loop16

f32loop8:
	CMPQ AX, CX
	JGE  f32done
	VMOVUPS (R8)(AX*4), Y1
	VMULPS  Y8, Y1, Y1
	VMOVUPS (R9)(AX*4), Y2
	VMULPS  Y9, Y2, Y2
	VADDPS  Y2, Y1, Y1
	VMOVUPS (R10)(AX*4), Y3
	VMULPS  Y10, Y3, Y3
	VADDPS  Y3, Y1, Y1
	VMOVUPS (R11)(AX*4), Y4
	VMULPS  Y11, Y4, Y4
	VADDPS  Y4, Y1, Y1
	VADDPS  (DI)(AX*4), Y1, Y1
	VMOVUPS Y1, (DI)(AX*4)
	ADDQ    $8, AX
	JMP     f32loop8

f32done:
	VZEROUPPER
	RET

// func quadAxpyI8AVX2(dst *int32, b0, b1, b2, b3 *int8, a *int32, n int)
//
// dst[j] += a[0]*int32(b0[j]) + ... + a[3]*int32(b3[j]) for j in [0,n),
// n a positive multiple of 8. Exact int32 arithmetic (VPMOVSXBD widens,
// VPMULLD multiplies in 32 bits).
TEXT ·quadAxpyI8AVX2(SB), NOSPLIT, $0-56
	MOVQ dst+0(FP), DI
	MOVQ b0+8(FP), R8
	MOVQ b1+16(FP), R9
	MOVQ b2+24(FP), R10
	MOVQ b3+32(FP), R11
	MOVQ a+40(FP), SI
	MOVQ n+48(FP), CX
	VPBROADCASTD (SI), Y8
	VPBROADCASTD 4(SI), Y9
	VPBROADCASTD 8(SI), Y10
	VPBROADCASTD 12(SI), Y11
	XORQ AX, AX
	MOVQ CX, DX
	ANDQ $-16, DX
	CMPQ DX, $0
	JE   i8loop8

i8loop16:
	VPMOVSXBD (R8)(AX*1), Y1
	VPMOVSXBD 8(R8)(AX*1), Y5
	VPMULLD   Y8, Y1, Y1
	VPMULLD   Y8, Y5, Y5
	VPMOVSXBD (R9)(AX*1), Y2
	VPMOVSXBD 8(R9)(AX*1), Y6
	VPMULLD   Y9, Y2, Y2
	VPMULLD   Y9, Y6, Y6
	VPADDD    Y2, Y1, Y1
	VPADDD    Y6, Y5, Y5
	VPMOVSXBD (R10)(AX*1), Y3
	VPMOVSXBD 8(R10)(AX*1), Y7
	VPMULLD   Y10, Y3, Y3
	VPMULLD   Y10, Y7, Y7
	VPADDD    Y3, Y1, Y1
	VPADDD    Y7, Y5, Y5
	VPMOVSXBD (R11)(AX*1), Y4
	VPMOVSXBD 8(R11)(AX*1), Y12
	VPMULLD   Y11, Y4, Y4
	VPMULLD   Y11, Y12, Y12
	VPADDD    Y4, Y1, Y1
	VPADDD    Y12, Y5, Y5
	VPADDD    (DI)(AX*4), Y1, Y1
	VPADDD    32(DI)(AX*4), Y5, Y5
	VMOVDQU   Y1, (DI)(AX*4)
	VMOVDQU   Y5, 32(DI)(AX*4)
	ADDQ      $16, AX
	CMPQ      AX, DX
	JL        i8loop16

i8loop8:
	CMPQ AX, CX
	JGE  i8done
	VPMOVSXBD (R8)(AX*1), Y1
	VPMULLD   Y8, Y1, Y1
	VPMOVSXBD (R9)(AX*1), Y2
	VPMULLD   Y9, Y2, Y2
	VPADDD    Y2, Y1, Y1
	VPMOVSXBD (R10)(AX*1), Y3
	VPMULLD   Y10, Y3, Y3
	VPADDD    Y3, Y1, Y1
	VPMOVSXBD (R11)(AX*1), Y4
	VPMULLD   Y11, Y4, Y4
	VPADDD    Y4, Y1, Y1
	VPADDD    (DI)(AX*4), Y1, Y1
	VMOVDQU   Y1, (DI)(AX*4)
	ADDQ      $8, AX
	JMP       i8loop8

i8done:
	VZEROUPPER
	RET
