//go:build !amd64

package tensor

// Non-amd64 targets run the portable scalar kernels; see simd_amd64.go.

var useSIMD = false

// SIMDEnabled reports whether the AVX2 kernel paths are active (always
// false off amd64 or under OFFLOADNN_NO_SIMD=1).
func SIMDEnabled() bool { return false }

func quadAxpyF32AVX2(dst, b0, b1, b2, b3 *float32, a *float32, n int) {
	panic("tensor: SIMD kernel called on non-amd64 build")
}

func quadAxpyI8AVX2(dst *int32, b0, b1, b2, b3 *int8, a *int32, n int) {
	panic("tensor: SIMD kernel called on non-amd64 build")
}
