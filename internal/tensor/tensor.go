// Package tensor implements a minimal dense-tensor engine used as the
// deep-learning substrate of the OffloaDNN reproduction. It provides the
// forward and backward passes for the operations needed by ResNet-style
// convolutional networks: matrix multiplication, 2-D convolution (via
// im2col), batch normalization, ReLU, pooling, fully connected layers and
// the softmax cross-entropy loss.
//
// Tensors are dense float64 arrays in row-major order. Image batches use
// the NCHW layout (batch, channels, height, width). The engine trades
// performance for clarity and determinism: it is the measurement substrate
// from which the OffloaDNN profiler derives per-block compute-time and
// memory tables, so relative cost fidelity matters more than raw speed.
package tensor

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// ErrShape reports an operation applied to tensors of incompatible shapes.
var ErrShape = errors.New("tensor: shape mismatch")

// Tensor is a dense, row-major, float64 n-dimensional array.
type Tensor struct {
	shape []int
	data  []float64
	// pooled marks storage obtained from the scratch pool via Rent;
	// only such tensors are recycled by Release. Views (Reshape) and
	// clones never inherit it.
	pooled bool
}

// New returns a zero-filled tensor of the given shape.
// It panics if any dimension is non-positive.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{shape: s, data: make([]float64, n)}
}

// FromSlice wraps data in a tensor of the given shape. The data slice is
// used directly (not copied); it must have exactly prod(shape) elements.
func FromSlice(data []float64, shape ...int) (*Tensor, error) {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			return nil, fmt.Errorf("%w: non-positive dimension %d", ErrShape, d)
		}
		n *= d
	}
	if len(data) != n {
		return nil, fmt.Errorf("%w: data length %d does not match shape %v (need %d)", ErrShape, len(data), shape, n)
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{shape: s, data: data}, nil
}

// MustFromSlice is FromSlice but panics on error. Intended for tests and
// literals where the shape is statically known to be correct.
func MustFromSlice(data []float64, shape ...int) *Tensor {
	t, err := FromSlice(data, shape...)
	if err != nil {
		panic(err)
	}
	return t
}

// Shape returns a copy of the tensor's shape.
func (t *Tensor) Shape() []int {
	s := make([]int, len(t.shape))
	copy(s, t.shape)
	return s
}

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.shape) }

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.data) }

// Data returns the underlying storage. Mutating it mutates the tensor.
func (t *Tensor) Data() []float64 { return t.data }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := New(t.shape...)
	copy(c.data, t.data)
	return c
}

// Reshape returns a view of the tensor with a new shape of equal length.
// The returned tensor shares storage with t.
func (t *Tensor) Reshape(shape ...int) (*Tensor, error) {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(t.data) {
		return nil, fmt.Errorf("%w: cannot reshape %v (%d elems) to %v (%d elems)",
			ErrShape, t.shape, len(t.data), shape, n)
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{shape: s, data: t.data}, nil
}

// MustReshape is Reshape but panics on error.
func (t *Tensor) MustReshape(shape ...int) *Tensor {
	r, err := t.Reshape(shape...)
	if err != nil {
		panic(err)
	}
	return r
}

// index computes the flat offset for multi-dimensional indices.
func (t *Tensor) index(idx ...int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: %d indices for rank-%d tensor", len(idx), len(t.shape)))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %d out of range [0,%d) in dim %d", x, t.shape[i], i))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// At returns the element at the given indices.
func (t *Tensor) At(idx ...int) float64 { return t.data[t.index(idx...)] }

// Set assigns the element at the given indices.
func (t *Tensor) Set(v float64, idx ...int) { t.data[t.index(idx...)] = v }

// Fill sets every element to v.
func (t *Tensor) Fill(v float64) {
	for i := range t.data {
		t.data[i] = v
	}
}

// Zero resets every element to 0.
func (t *Tensor) Zero() { t.Fill(0) }

// SameShape reports whether t and u have identical shapes.
func (t *Tensor) SameShape(u *Tensor) bool {
	if len(t.shape) != len(u.shape) {
		return false
	}
	for i := range t.shape {
		if t.shape[i] != u.shape[i] {
			return false
		}
	}
	return true
}

// AddInPlace adds u element-wise into t.
func (t *Tensor) AddInPlace(u *Tensor) error {
	if !t.SameShape(u) {
		return fmt.Errorf("%w: add %v and %v", ErrShape, t.shape, u.shape)
	}
	for i := range t.data {
		t.data[i] += u.data[i]
	}
	return nil
}

// Add returns t + u element-wise.
func Add(t, u *Tensor) (*Tensor, error) {
	if !t.SameShape(u) {
		return nil, fmt.Errorf("%w: add %v and %v", ErrShape, t.shape, u.shape)
	}
	out := t.Clone()
	for i := range out.data {
		out.data[i] += u.data[i]
	}
	return out, nil
}

// ScaleInPlace multiplies every element of t by a.
func (t *Tensor) ScaleInPlace(a float64) {
	for i := range t.data {
		t.data[i] *= a
	}
}

// AXPYInPlace computes t += a*u element-wise.
func (t *Tensor) AXPYInPlace(a float64, u *Tensor) error {
	if !t.SameShape(u) {
		return fmt.Errorf("%w: axpy %v and %v", ErrShape, t.shape, u.shape)
	}
	for i := range t.data {
		t.data[i] += a * u.data[i]
	}
	return nil
}

// Sum returns the sum of all elements.
func (t *Tensor) Sum() float64 {
	s := 0.0
	for _, v := range t.data {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of all elements.
func (t *Tensor) Mean() float64 { return t.Sum() / float64(len(t.data)) }

// MaxAbs returns the maximum absolute element value.
func (t *Tensor) MaxAbs() float64 {
	m := 0.0
	for _, v := range t.data {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// L2Norm returns the Euclidean norm of the flattened tensor.
func (t *Tensor) L2Norm() float64 {
	s := 0.0
	for _, v := range t.data {
		s += v * v
	}
	return math.Sqrt(s)
}

// String renders the shape and a preview of the data, for debugging.
func (t *Tensor) String() string {
	var sb strings.Builder
	sb.WriteString("Tensor[")
	for i, d := range t.shape {
		if i > 0 {
			sb.WriteByte('x')
		}
		sb.WriteString(strconv.Itoa(d))
	}
	sb.WriteString("]{")
	n := len(t.data)
	if n > 8 {
		n = 8
	}
	for i := 0; i < n; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(strconv.FormatFloat(t.data[i], 'g', 4, 64))
	}
	if len(t.data) > 8 {
		sb.WriteString(", ...")
	}
	sb.WriteByte('}')
	return sb.String()
}
