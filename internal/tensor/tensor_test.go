package tensor

import (
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestNewShapeAndLen(t *testing.T) {
	tt := New(2, 3, 4)
	if tt.Rank() != 3 {
		t.Fatalf("Rank() = %d, want 3", tt.Rank())
	}
	if tt.Len() != 24 {
		t.Fatalf("Len() = %d, want 24", tt.Len())
	}
	got := tt.Shape()
	want := []int{2, 3, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Shape() = %v, want %v", got, want)
		}
	}
}

func TestNewPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New(0)
}

func TestAtSetRoundTrip(t *testing.T) {
	tt := New(2, 3)
	tt.Set(7.5, 1, 2)
	if got := tt.At(1, 2); got != 7.5 {
		t.Fatalf("At(1,2) = %v, want 7.5", got)
	}
	if got := tt.At(0, 0); got != 0 {
		t.Fatalf("At(0,0) = %v, want 0", got)
	}
}

func TestFromSliceValidation(t *testing.T) {
	if _, err := FromSlice([]float64{1, 2, 3}, 2, 2); !errors.Is(err, ErrShape) {
		t.Fatalf("FromSlice wrong length: err = %v, want ErrShape", err)
	}
	if _, err := FromSlice([]float64{1, 2}, 2, -1); !errors.Is(err, ErrShape) {
		t.Fatalf("FromSlice negative dim: err = %v, want ErrShape", err)
	}
	tt, err := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	if err != nil {
		t.Fatalf("FromSlice valid: %v", err)
	}
	if tt.At(1, 0) != 3 {
		t.Fatalf("At(1,0) = %v, want 3 (row-major)", tt.At(1, 0))
	}
}

func TestReshapeSharesStorage(t *testing.T) {
	a := MustFromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b, err := a.Reshape(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	b.Set(99, 0, 1)
	if a.At(0, 1) != 99 {
		t.Fatal("Reshape did not share storage")
	}
	if _, err := a.Reshape(4, 2); !errors.Is(err, ErrShape) {
		t.Fatalf("Reshape bad size: err = %v, want ErrShape", err)
	}
}

func TestCloneIsDeep(t *testing.T) {
	a := MustFromSlice([]float64{1, 2}, 2)
	b := a.Clone()
	b.Set(5, 0)
	if a.At(0) != 1 {
		t.Fatal("Clone shares storage")
	}
}

func TestAddAndAXPY(t *testing.T) {
	a := MustFromSlice([]float64{1, 2, 3}, 3)
	b := MustFromSlice([]float64{10, 20, 30}, 3)
	c, err := Add(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{11, 22, 33}
	for i, w := range want {
		if c.At(i) != w {
			t.Fatalf("Add[%d] = %v, want %v", i, c.At(i), w)
		}
	}
	if err := a.AXPYInPlace(2, b); err != nil {
		t.Fatal(err)
	}
	want = []float64{21, 42, 63}
	for i, w := range want {
		if a.At(i) != w {
			t.Fatalf("AXPY[%d] = %v, want %v", i, a.At(i), w)
		}
	}
	bad := New(2)
	if err := a.AddInPlace(bad); !errors.Is(err, ErrShape) {
		t.Fatalf("AddInPlace shape mismatch: err = %v, want ErrShape", err)
	}
}

func TestSumMeanNorms(t *testing.T) {
	a := MustFromSlice([]float64{3, -4}, 2)
	if a.Sum() != -1 {
		t.Fatalf("Sum = %v, want -1", a.Sum())
	}
	if a.Mean() != -0.5 {
		t.Fatalf("Mean = %v, want -0.5", a.Mean())
	}
	if a.MaxAbs() != 4 {
		t.Fatalf("MaxAbs = %v, want 4", a.MaxAbs())
	}
	if !almostEqual(a.L2Norm(), 5, 1e-12) {
		t.Fatalf("L2Norm = %v, want 5", a.L2Norm())
	}
}

func TestMatMulKnownValues(t *testing.T) {
	a := MustFromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := MustFromSlice([]float64{7, 8, 9, 10, 11, 12}, 3, 2)
	c, err := MatMul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{58, 64}, {139, 154}}
	for i := range want {
		for j := range want[i] {
			if c.At(i, j) != want[i][j] {
				t.Fatalf("MatMul[%d][%d] = %v, want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
}

func TestMatMulShapeErrors(t *testing.T) {
	a := New(2, 3)
	b := New(4, 2)
	if _, err := MatMul(a, b); !errors.Is(err, ErrShape) {
		t.Fatalf("MatMul inner mismatch: err = %v, want ErrShape", err)
	}
	if _, err := MatMul(New(2), b); !errors.Is(err, ErrShape) {
		t.Fatalf("MatMul rank-1: err = %v, want ErrShape", err)
	}
}

func TestMatMulTransVariantsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := New(4, 5)
	b := New(4, 3)
	for i := range a.Data() {
		a.Data()[i] = rng.NormFloat64()
	}
	for i := range b.Data() {
		b.Data()[i] = rng.NormFloat64()
	}
	at, err := Transpose(a)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := MatMul(at, b)
	if err != nil {
		t.Fatal(err)
	}
	fused, err := MatMulTransA(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !tensorsClose(direct, fused, 1e-12) {
		t.Fatal("MatMulTransA disagrees with explicit transpose")
	}

	c := New(6, 5)
	for i := range c.Data() {
		c.Data()[i] = rng.NormFloat64()
	}
	// a (4×5) · cᵀ (5×6)
	ct, err := Transpose(c)
	if err != nil {
		t.Fatal(err)
	}
	direct2, err := MatMul(a, ct)
	if err != nil {
		t.Fatal(err)
	}
	fused2, err := MatMulTransB(a, c)
	if err != nil {
		t.Fatal(err)
	}
	if !tensorsClose(direct2, fused2, 1e-12) {
		t.Fatal("MatMulTransB disagrees with explicit transpose")
	}
}

func tensorsClose(a, b *Tensor, tol float64) bool {
	if !a.SameShape(b) {
		return false
	}
	for i := range a.Data() {
		if !almostEqual(a.Data()[i], b.Data()[i], tol) {
			return false
		}
	}
	return true
}

// Property: matmul is linear in its first argument, i.e.
// (A1+A2)·B == A1·B + A2·B.
func TestQuickMatMulLinearity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n := 1+rng.Intn(5), 1+rng.Intn(5), 1+rng.Intn(5)
		a1, a2, b := New(m, k), New(m, k), New(k, n)
		for i := range a1.Data() {
			a1.Data()[i] = rng.NormFloat64()
			a2.Data()[i] = rng.NormFloat64()
		}
		for i := range b.Data() {
			b.Data()[i] = rng.NormFloat64()
		}
		sum, _ := Add(a1, a2)
		lhs, err := MatMul(sum, b)
		if err != nil {
			return false
		}
		r1, _ := MatMul(a1, b)
		r2, _ := MatMul(a2, b)
		rhs, _ := Add(r1, r2)
		return tensorsClose(lhs, rhs, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: transpose is an involution.
func TestQuickTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, n := 1+rng.Intn(6), 1+rng.Intn(6)
		a := New(m, n)
		for i := range a.Data() {
			a.Data()[i] = rng.NormFloat64()
		}
		at, err := Transpose(a)
		if err != nil {
			return false
		}
		att, err := Transpose(at)
		if err != nil {
			return false
		}
		return tensorsClose(a, att, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestConv2DIdentityKernel(t *testing.T) {
	// 1×1 identity kernel leaves the input unchanged.
	x := MustFromSlice([]float64{1, 2, 3, 4}, 1, 1, 2, 2)
	w := MustFromSlice([]float64{1}, 1, 1, 1, 1)
	p := Conv2DParams{InChannels: 1, OutChannels: 1, Kernel: 1, Stride: 1}
	y, err := Conv2D(x, w, nil, p)
	if err != nil {
		t.Fatal(err)
	}
	if !tensorsClose(x, y, 0) {
		t.Fatalf("identity conv changed input: %v", y)
	}
}

func TestConv2DKnownValues(t *testing.T) {
	// 3×3 input, 2×2 kernel of ones, stride 1, no padding → 2×2 window sums.
	x := MustFromSlice([]float64{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	}, 1, 1, 3, 3)
	w := MustFromSlice([]float64{1, 1, 1, 1}, 1, 1, 2, 2)
	p := Conv2DParams{InChannels: 1, OutChannels: 1, Kernel: 2, Stride: 1}
	y, err := Conv2D(x, w, nil, p)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{12, 16, 24, 28}
	for i, wv := range want {
		if y.Data()[i] != wv {
			t.Fatalf("conv[%d] = %v, want %v", i, y.Data()[i], wv)
		}
	}
}

func TestConv2DPaddingAndStride(t *testing.T) {
	x := MustFromSlice([]float64{1, 2, 3, 4}, 1, 1, 2, 2)
	w := MustFromSlice([]float64{1}, 1, 1, 1, 1)
	p := Conv2DParams{InChannels: 1, OutChannels: 1, Kernel: 1, Stride: 2, Padding: 1}
	y, err := Conv2D(x, w, nil, p)
	if err != nil {
		t.Fatal(err)
	}
	// Output 2×2 sampling padded grid at (0,0),(0,2),(2,0),(2,2) of a 4×4
	// padded image → corners are padding, center values picked.
	if y.Dim(2) != 2 || y.Dim(3) != 2 {
		t.Fatalf("conv out spatial = %dx%d, want 2x2", y.Dim(2), y.Dim(3))
	}
	want := []float64{0, 0, 0, 4}
	for i, wv := range want {
		if y.Data()[i] != wv {
			t.Fatalf("conv[%d] = %v, want %v", i, y.Data()[i], wv)
		}
	}
}

func TestConv2DBias(t *testing.T) {
	x := New(1, 1, 2, 2)
	w := MustFromSlice([]float64{1}, 1, 1, 1, 1)
	b := MustFromSlice([]float64{3}, 1)
	p := Conv2DParams{InChannels: 1, OutChannels: 1, Kernel: 1, Stride: 1}
	y, err := Conv2D(x, w, b, p)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range y.Data() {
		if v != 3 {
			t.Fatalf("conv+bias[%d] = %v, want 3", i, v)
		}
	}
}

func TestConv2DShapeErrors(t *testing.T) {
	p := Conv2DParams{InChannels: 2, OutChannels: 3, Kernel: 3, Stride: 1, Padding: 1}
	x := New(1, 1, 4, 4) // wrong channels
	w := New(3, 2, 3, 3)
	if _, err := Conv2D(x, w, nil, p); !errors.Is(err, ErrShape) {
		t.Fatalf("conv channel mismatch: err = %v, want ErrShape", err)
	}
	x2 := New(1, 2, 4, 4)
	wBad := New(3, 2, 5, 5)
	if _, err := Conv2D(x2, wBad, nil, p); !errors.Is(err, ErrShape) {
		t.Fatalf("conv weight mismatch: err = %v, want ErrShape", err)
	}
	pBad := Conv2DParams{InChannels: 2, OutChannels: 3, Kernel: 0, Stride: 1}
	if _, err := Conv2D(x2, w, nil, pBad); !errors.Is(err, ErrShape) {
		t.Fatalf("conv bad kernel: err = %v, want ErrShape", err)
	}
}

func TestMaxPool2DKnownValues(t *testing.T) {
	x := MustFromSlice([]float64{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}, 1, 1, 4, 4)
	res, err := MaxPool2D(x, PoolParams{Kernel: 2, Stride: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{6, 8, 14, 16}
	for i, wv := range want {
		if res.Out.Data()[i] != wv {
			t.Fatalf("maxpool[%d] = %v, want %v", i, res.Out.Data()[i], wv)
		}
	}
}

func TestMaxPool2DBackwardRoutesToArgmax(t *testing.T) {
	x := MustFromSlice([]float64{
		1, 2,
		3, 4,
	}, 1, 1, 2, 2)
	res, err := MaxPool2D(x, PoolParams{Kernel: 2, Stride: 2})
	if err != nil {
		t.Fatal(err)
	}
	dy := MustFromSlice([]float64{10}, 1, 1, 1, 1)
	dx, err := res.Backward(dy)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 0, 0, 10}
	for i, wv := range want {
		if dx.Data()[i] != wv {
			t.Fatalf("maxpool dx[%d] = %v, want %v", i, dx.Data()[i], wv)
		}
	}
}

func TestGlobalAvgPool(t *testing.T) {
	x := MustFromSlice([]float64{1, 2, 3, 4, 10, 20, 30, 40}, 1, 2, 2, 2)
	y, err := GlobalAvgPool2D(x)
	if err != nil {
		t.Fatal(err)
	}
	if y.At(0, 0) != 2.5 || y.At(0, 1) != 25 {
		t.Fatalf("gap = %v, want [2.5 25]", y.Data())
	}
	dy := MustFromSlice([]float64{4, 8}, 1, 2)
	dx, err := GlobalAvgPool2DBackward(dy, []int{1, 2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if dx.Data()[i] != 1 {
			t.Fatalf("gap dx[%d] = %v, want 1", i, dx.Data()[i])
		}
	}
	for i := 4; i < 8; i++ {
		if dx.Data()[i] != 2 {
			t.Fatalf("gap dx[%d] = %v, want 2", i, dx.Data()[i])
		}
	}
}

func TestBatchNormTrainingNormalizes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := New(4, 3, 5, 5)
	for i := range x.Data() {
		x.Data()[i] = rng.NormFloat64()*3 + 7
	}
	st := NewBatchNormState(3)
	res, err := BatchNorm2D(x, st, true)
	if err != nil {
		t.Fatal(err)
	}
	// Per-channel mean ≈ 0, variance ≈ 1 after normalization (gamma=1, beta=0).
	n, c, hw := 4, 3, 25
	for ch := 0; ch < c; ch++ {
		sum, sq := 0.0, 0.0
		for b := 0; b < n; b++ {
			off := (b*c + ch) * hw
			for _, v := range res.Out.Data()[off : off+hw] {
				sum += v
				sq += v * v
			}
		}
		cnt := float64(n * hw)
		mean := sum / cnt
		variance := sq/cnt - mean*mean
		if !almostEqual(mean, 0, 1e-9) {
			t.Fatalf("channel %d mean = %v, want 0", ch, mean)
		}
		if !almostEqual(variance, 1, 1e-3) {
			t.Fatalf("channel %d var = %v, want 1", ch, variance)
		}
	}
}

func TestBatchNormEvalUsesRunningStats(t *testing.T) {
	st := NewBatchNormState(1)
	st.RunningMean.Set(2, 0)
	st.RunningVar.Set(4, 0)
	x := MustFromSlice([]float64{2, 4, 0, 6}, 1, 1, 2, 2)
	res, err := BatchNorm2D(x, st, false)
	if err != nil {
		t.Fatal(err)
	}
	// (x-2)/sqrt(4+eps) ≈ (x-2)/2
	want := []float64{0, 1, -1, 2}
	for i, wv := range want {
		if !almostEqual(res.Out.Data()[i], wv, 1e-4) {
			t.Fatalf("bn eval[%d] = %v, want %v", i, res.Out.Data()[i], wv)
		}
	}
}

func TestReLUForwardBackward(t *testing.T) {
	x := MustFromSlice([]float64{-1, 0, 2}, 3)
	y, mask := ReLU(x)
	want := []float64{0, 0, 2}
	for i, wv := range want {
		if y.Data()[i] != wv {
			t.Fatalf("relu[%d] = %v, want %v", i, y.Data()[i], wv)
		}
	}
	dy := MustFromSlice([]float64{5, 5, 5}, 3)
	dx, err := ReLUBackward(dy, mask)
	if err != nil {
		t.Fatal(err)
	}
	wantDX := []float64{0, 0, 5}
	for i, wv := range wantDX {
		if dx.Data()[i] != wv {
			t.Fatalf("relu dx[%d] = %v, want %v", i, dx.Data()[i], wv)
		}
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	x := MustFromSlice([]float64{1, 2, 3, 1000, 1001, 1002}, 2, 3)
	y, err := Softmax(x)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		s := 0.0
		for j := 0; j < 3; j++ {
			v := y.At(i, j)
			if v < 0 || v > 1 || math.IsNaN(v) {
				t.Fatalf("softmax[%d][%d] = %v out of range", i, j, v)
			}
			s += v
		}
		if !almostEqual(s, 1, 1e-12) {
			t.Fatalf("softmax row %d sums to %v", i, s)
		}
	}
	// Shift invariance: rows 0 and 1 differ by constant 999, so probs equal.
	for j := 0; j < 3; j++ {
		if !almostEqual(y.At(0, j), y.At(1, j), 1e-12) {
			t.Fatal("softmax is not shift-invariant")
		}
	}
}

func TestCrossEntropyUniformLogits(t *testing.T) {
	x := New(2, 4) // uniform logits → loss = ln(4)
	res, err := CrossEntropy(x, []int{0, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(res.Loss, math.Log(4), 1e-12) {
		t.Fatalf("CE loss = %v, want ln(4) = %v", res.Loss, math.Log(4))
	}
}

func TestCrossEntropyLabelValidation(t *testing.T) {
	x := New(1, 3)
	if _, err := CrossEntropy(x, []int{5}); !errors.Is(err, ErrShape) {
		t.Fatalf("CE bad label: err = %v, want ErrShape", err)
	}
	if _, err := CrossEntropy(x, []int{0, 1}); !errors.Is(err, ErrShape) {
		t.Fatalf("CE label count: err = %v, want ErrShape", err)
	}
}

func TestLinearKnownValues(t *testing.T) {
	x := MustFromSlice([]float64{1, 2}, 1, 2)
	w := MustFromSlice([]float64{3, 4, 5, 6}, 2, 2) // rows are output neurons
	b := MustFromSlice([]float64{10, 20}, 2)
	y, err := Linear(x, w, b)
	if err != nil {
		t.Fatal(err)
	}
	// y0 = 1*3+2*4+10 = 21; y1 = 1*5+2*6+20 = 37
	if y.At(0, 0) != 21 || y.At(0, 1) != 37 {
		t.Fatalf("linear = %v, want [21 37]", y.Data())
	}
}

func TestArgmax(t *testing.T) {
	x := MustFromSlice([]float64{1, 5, 3, 9, 2, 4}, 2, 3)
	got, err := Argmax(x)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 || got[1] != 0 {
		t.Fatalf("argmax = %v, want [1 0]", got)
	}
}

func TestMustReshapeAndPanics(t *testing.T) {
	a := MustFromSlice([]float64{1, 2, 3, 4}, 2, 2)
	b := a.MustReshape(4)
	if b.Rank() != 1 || b.Dim(0) != 4 {
		t.Fatalf("MustReshape shape %v", b.Shape())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustReshape with bad size did not panic")
		}
	}()
	a.MustReshape(3)
}

func TestMustFromSlicePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustFromSlice with bad shape did not panic")
		}
	}()
	MustFromSlice([]float64{1}, 2)
}

func TestZeroAndFill(t *testing.T) {
	a := New(3)
	a.Fill(7)
	for _, v := range a.Data() {
		if v != 7 {
			t.Fatal("Fill failed")
		}
	}
	a.Zero()
	for _, v := range a.Data() {
		if v != 0 {
			t.Fatal("Zero failed")
		}
	}
}

func TestStringPreview(t *testing.T) {
	a := New(3, 4) // 12 elements: preview truncates at 8
	s := a.String()
	if !strings.Contains(s, "Tensor[3x4]") {
		t.Fatalf("String() = %q", s)
	}
	if !strings.Contains(s, "...") {
		t.Fatalf("String() should truncate long tensors: %q", s)
	}
	small := MustFromSlice([]float64{1.5}, 1)
	if strings.Contains(small.String(), "...") {
		t.Fatal("small tensor should not truncate")
	}
}

func TestReLUInPlaceMatchesReLU(t *testing.T) {
	x := MustFromSlice([]float64{-2, 0, 3}, 3)
	y, wantMask := ReLU(x)
	inPlace := x.Clone()
	gotMask := ReLUInPlace(inPlace)
	for i := range y.Data() {
		if inPlace.Data()[i] != y.Data()[i] {
			t.Fatalf("in-place relu differs at %d", i)
		}
		if gotMask[i] != wantMask[i] {
			t.Fatalf("mask differs at %d", i)
		}
	}
}

func TestInitializersProduceFiniteSpread(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	w := New(16, 9)
	KaimingInit(w, 9, rng)
	if w.MaxAbs() == 0 {
		t.Fatal("Kaiming init left zeros")
	}
	for _, v := range w.Data() {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("Kaiming produced non-finite value")
		}
	}
	u := New(16, 9)
	XavierInit(u, 9, 16, rng)
	lim := math.Sqrt(6.0 / 25.0)
	for _, v := range u.Data() {
		if v < -lim || v > lim {
			t.Fatalf("Xavier value %v outside ±%v", v, lim)
		}
	}
}

func TestConvPoolParamValidation(t *testing.T) {
	x := New(1, 1, 4, 4)
	w := New(1, 1, 1, 1)
	bad := []Conv2DParams{
		{InChannels: 1, OutChannels: 0, Kernel: 1, Stride: 1},
		{InChannels: 1, OutChannels: 1, Kernel: 1, Stride: 0},
		{InChannels: 1, OutChannels: 1, Kernel: 1, Stride: 1, Padding: -1},
	}
	for i, p := range bad {
		if _, err := Conv2D(x, w, nil, p); !errors.Is(err, ErrShape) {
			t.Fatalf("bad conv params %d: err = %v", i, err)
		}
	}
	badPool := []PoolParams{
		{Kernel: 0, Stride: 1},
		{Kernel: 2, Stride: 0},
		{Kernel: 2, Stride: 1, Padding: -1},
	}
	for i, p := range badPool {
		if _, err := MaxPool2D(x, p); !errors.Is(err, ErrShape) {
			t.Fatalf("bad pool params %d: err = %v", i, err)
		}
	}
}
