package train

import (
	"fmt"
	"math"
)

// ConvergenceParams is the calibrated accuracy-vs-epoch model
//
//	acc(e) = Asymptote − (Asymptote − Init)·exp(−e/TimeConst)
//	         − OverfitRate·max(0, e − OverfitStart)
//
// used to carry the small-scale measured training behaviour to ResNet-18
// scale in Fig. 2(left). The exponential term models convergence speed
// (fewer trainable parameters → smaller TimeConst) and the linear term
// the overfitting decay the paper observes for heavily shared
// configurations after long training.
type ConvergenceParams struct {
	Init         float64 // accuracy at epoch 0 (%)
	Asymptote    float64 // accuracy the exponential approaches (%)
	TimeConst    float64 // convergence time constant (epochs)
	OverfitRate  float64 // late-training accuracy decay (%/epoch)
	OverfitStart float64 // epoch at which overfitting sets in
}

// Accuracy evaluates the curve at a (fractional) epoch.
func (p ConvergenceParams) Accuracy(epoch float64) float64 {
	if epoch < 0 {
		epoch = 0
	}
	a := p.Asymptote - (p.Asymptote-p.Init)*math.Exp(-epoch/p.TimeConst)
	if epoch > p.OverfitStart {
		a -= p.OverfitRate * (epoch - p.OverfitStart)
	}
	if a < 0 {
		a = 0
	}
	return a
}

// EpochsToReach returns the first epoch at which the curve reaches the
// target accuracy, or -1 if it never does within horizon epochs.
func (p ConvergenceParams) EpochsToReach(target float64, horizon int) int {
	for e := 0; e <= horizon; e++ {
		if p.Accuracy(float64(e)) >= target {
			return e
		}
	}
	return -1
}

// PaperConvergence returns the calibrated Fig. 2(left) curve for a Table-I
// configuration name (unpruned configs only: "A".."E"). Calibration
// targets the paper's qualitative facts: CONFIG A needs >200 epochs to
// reach 80% but ends highest after 250+; B and C converge to 80% fastest
// and later overfit below A; D and E converge slower than C because they
// train more parameters.
func PaperConvergence(config string) (ConvergenceParams, error) {
	switch config {
	case "A":
		return ConvergenceParams{Init: 20, Asymptote: 89.5, TimeConst: 110, OverfitRate: 0, OverfitStart: 400}, nil
	case "B":
		return ConvergenceParams{Init: 30, Asymptote: 82, TimeConst: 16, OverfitRate: 0.02, OverfitStart: 80}, nil
	case "C":
		return ConvergenceParams{Init: 28, Asymptote: 84, TimeConst: 19, OverfitRate: 0.015, OverfitStart: 100}, nil
	case "D":
		return ConvergenceParams{Init: 26, Asymptote: 85, TimeConst: 34, OverfitRate: 0.008, OverfitStart: 150}, nil
	case "E":
		return ConvergenceParams{Init: 24, Asymptote: 86, TimeConst: 55, OverfitRate: 0.004, OverfitStart: 200}, nil
	default:
		return ConvergenceParams{}, fmt.Errorf("%w: no convergence calibration for config %q", ErrConfig, config)
	}
}

// PaperClassAccuracy returns the calibrated Fig. 3(right) average class
// accuracy (%) for class "electric guitar" after 100 fine-tuning epochs,
// for a Table-I config name ("A".."E" and "*-pruned"). The ordering
// encodes the paper's observations: pruning costs every configuration a
// few points; CONFIG B retains the most accuracy after pruning because
// most of its blocks are inherited (unpruned) from the base model, and
// the loss grows as more blocks are pruned (C, D, E, A).
func PaperClassAccuracy(config string) (float64, error) {
	table := map[string]float64{
		"A": 80.0, "B": 76.5, "C": 77.5, "D": 78.5, "E": 79.0,
		"A-pruned": 68.0, "B-pruned": 75.0, "C-pruned": 73.5, "D-pruned": 71.5, "E-pruned": 70.0,
	}
	v, ok := table[config]
	if !ok {
		return 0, fmt.Errorf("%w: no class-accuracy calibration for config %q", ErrConfig, config)
	}
	return v, nil
}
