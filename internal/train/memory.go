package train

import (
	"offloadnn/internal/dnn"
)

// MemoryModel estimates peak training memory for a Table-I configuration,
// reproducing the Fig. 2(right) comparison. It follows the standard
// accounting of a GPU training step:
//
//   - every block's weights are resident (float32);
//   - trainable blocks additionally hold gradients (float32) and
//     optimizer state (Adam: two float32 moments);
//   - the forward pass keeps a transient buffer of the largest
//     inter-block activation (×2 for double buffering);
//   - blocks at or above the deepest trainable block cache their
//     activations for backward — frozen shared prefixes do not, which is
//     why CONFIG B/C peak ~1.8× lower than CONFIG A;
//   - a fixed framework overhead (CUDA context, allocator pools).
type MemoryModel struct {
	// BatchSize of the training step (paper: 256).
	BatchSize int
	// BytesPerValue for weights/activations (4 = float32).
	BytesPerValue int
	// OptimizerStateBytesPerParam (Adam: 8 with float32 moments).
	OptimizerStateBytesPerParam int
	// FrameworkOverheadBytes models the constant CUDA/framework cost.
	FrameworkOverheadBytes int64
	// FrozenActivationFraction is the share of a frozen block's
	// activations that remains resident during its forward pass
	// (workspace buffers, fused-op intermediates); frameworks do not
	// reduce frozen-layer forward memory to zero, which is why Fig. 2
	// (right) shows ~1.8× rather than ~5× savings for CONFIG B.
	FrozenActivationFraction float64
}

// DefaultMemoryModel returns the calibration used for Fig. 2(right):
// batch 256, float32, Adam state, ~700 MiB framework overhead.
func DefaultMemoryModel() MemoryModel {
	return MemoryModel{
		BatchSize:                   256,
		BytesPerValue:               4,
		OptimizerStateBytesPerParam: 8,
		FrameworkOverheadBytes:      700 << 20,
		FrozenActivationFraction:    0.5,
	}
}

// PeakBytes estimates the peak training footprint of a configuration over
// the analytic model statistics. cfg decides which stages are frozen
// (shared) versus trainable.
func (m MemoryModel) PeakBytes(stats dnn.ModelStats, cfg dnn.TableIConfig) int64 {
	bpv := int64(m.BytesPerValue)
	batch := int64(m.BatchSize)

	total := m.FrameworkOverheadBytes
	// All weights resident.
	total += int64(stats.TotalParams()) * bpv

	// Which stages train? Stage 0 (stem) is trainable only from scratch;
	// stages 1..4 train when above the shared prefix; the classifier (5)
	// always trains.
	trainable := func(stage int) bool {
		switch {
		case cfg.FromScratch:
			return true
		case stage == 0:
			return false
		case stage == 5:
			return true
		default:
			return stage > cfg.SharedStages
		}
	}

	lowestTrainable := 5
	for s := 0; s <= 5; s++ {
		if trainable(s) {
			lowestTrainable = s
			break
		}
	}

	var trainParams, maxAct int64
	var actBytes float64
	for s := 0; s <= 5; s++ {
		b := stats.Block(s)
		if trainable(s) {
			trainParams += int64(b.Params)
		}
		if s >= lowestTrainable {
			actBytes += float64(b.ActivationElems)
		} else {
			actBytes += m.FrozenActivationFraction * float64(b.ActivationElems)
		}
		if int64(b.OutputElems) > maxAct {
			maxAct = int64(b.OutputElems)
		}
	}

	// Gradients + optimizer state for trainable parameters.
	total += trainParams * bpv
	total += trainParams * int64(m.OptimizerStateBytesPerParam)
	// Backward-cached activations plus frozen-forward workspace.
	total += int64(actBytes * float64(batch) * float64(bpv))
	// Transient double-buffered forward activations.
	total += 2 * maxAct * batch * bpv
	return total
}

// PeakMiB converts PeakBytes to mebibytes, the Fig. 2(right) unit.
func (m MemoryModel) PeakMiB(stats dnn.ModelStats, cfg dnn.TableIConfig) float64 {
	return float64(m.PeakBytes(stats, cfg)) / (1 << 20)
}

// MeasuredPeakBytes estimates the peak footprint of an *instantiated*
// model the same way, using real per-block parameter counts and treating
// frozen blocks as shared. It lets tests confirm the analytic model and
// the instantiated models rank configurations identically.
func (m MemoryModel) MeasuredPeakBytes(model *dnn.Model, activationElems func(stage int) (cached, output int64)) int64 {
	bpv := int64(m.BytesPerValue)
	batch := int64(m.BatchSize)
	total := m.FrameworkOverheadBytes

	lowest := -1
	for _, b := range model.Blocks {
		total += int64(b.ParamCount()) * bpv
		if !b.Frozen && lowest < 0 {
			lowest = b.Stage
		}
	}
	if lowest < 0 {
		lowest = 6
	}
	var maxAct int64
	for _, b := range model.Blocks {
		cached, out := activationElems(b.Stage)
		if !b.Frozen {
			total += int64(b.ParamCount()) * (bpv + int64(m.OptimizerStateBytesPerParam))
		}
		if b.Stage >= lowest {
			total += cached * batch * bpv
		} else {
			total += int64(m.FrozenActivationFraction * float64(cached*batch*bpv))
		}
		if out > maxAct {
			maxAct = out
		}
	}
	total += 2 * maxAct * batch * bpv
	return total
}
