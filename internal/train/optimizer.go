// Package train implements the fine-tuning machinery of the motivation
// experiments: SGD/Adam optimizers, the cosine-annealing learning-rate
// schedule the paper uses, a training loop with block freezing, a
// training-memory model (Fig. 2 right), and the calibrated convergence
// curves that carry the measured small-scale behaviour to ResNet-18 scale
// (Fig. 2 left).
package train

import (
	"errors"
	"fmt"
	"math"

	"offloadnn/internal/tensor"
)

// ErrConfig reports invalid optimizer or trainer configuration.
var ErrConfig = errors.New("train: invalid configuration")

// Optimizer updates parameters from accumulated gradients.
type Optimizer interface {
	// Step applies one update; params and grads are parallel slices.
	Step(params, grads []*tensor.Tensor) error
	// SetLR changes the learning rate (driven by the scheduler).
	SetLR(lr float64)
	// StateBytesPerParam reports the optimizer-state footprint used by
	// the training-memory model (0 for plain SGD, 8 for momentum-SGD
	// float64 velocity, 16 for Adam's two moments).
	StateBytesPerParam() int
}

// SGD is stochastic gradient descent with optional momentum and weight
// decay.
type SGD struct {
	LR          float64
	Momentum    float64
	WeightDecay float64

	velocity [][]float64
}

// NewSGD constructs an SGD optimizer.
func NewSGD(lr, momentum, weightDecay float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, WeightDecay: weightDecay}
}

// SetLR implements Optimizer.
func (o *SGD) SetLR(lr float64) { o.LR = lr }

// StateBytesPerParam implements Optimizer.
func (o *SGD) StateBytesPerParam() int {
	if o.Momentum != 0 {
		return 8
	}
	return 0
}

// Step implements Optimizer.
func (o *SGD) Step(params, grads []*tensor.Tensor) error {
	if len(params) != len(grads) {
		return fmt.Errorf("%w: %d params vs %d grads", ErrConfig, len(params), len(grads))
	}
	if o.Momentum != 0 && len(o.velocity) != len(params) {
		o.velocity = make([][]float64, len(params))
		for i, p := range params {
			o.velocity[i] = make([]float64, p.Len())
		}
	}
	for i, p := range params {
		g := grads[i]
		if p.Len() != g.Len() {
			return fmt.Errorf("%w: param %d has %d elems, grad %d", ErrConfig, i, p.Len(), g.Len())
		}
		pd, gd := p.Data(), g.Data()
		if o.Momentum != 0 {
			v := o.velocity[i]
			for j := range pd {
				gj := gd[j] + o.WeightDecay*pd[j]
				v[j] = o.Momentum*v[j] + gj
				pd[j] -= o.LR * v[j]
			}
		} else {
			for j := range pd {
				pd[j] -= o.LR * (gd[j] + o.WeightDecay*pd[j])
			}
		}
	}
	return nil
}

// Adam is the Adam optimizer with decoupled weight decay disabled (plain
// L2, matching the paper's "'Adam' optimizer ... decay rate 0.001").
type Adam struct {
	LR          float64
	Beta1       float64
	Beta2       float64
	Eps         float64
	WeightDecay float64

	m, v [][]float64
	t    int
}

// NewAdam constructs an Adam optimizer with standard betas.
func NewAdam(lr, weightDecay float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, WeightDecay: weightDecay}
}

// SetLR implements Optimizer.
func (o *Adam) SetLR(lr float64) { o.LR = lr }

// StateBytesPerParam implements Optimizer.
func (o *Adam) StateBytesPerParam() int { return 16 }

// Step implements Optimizer.
func (o *Adam) Step(params, grads []*tensor.Tensor) error {
	if len(params) != len(grads) {
		return fmt.Errorf("%w: %d params vs %d grads", ErrConfig, len(params), len(grads))
	}
	if len(o.m) != len(params) {
		o.m = make([][]float64, len(params))
		o.v = make([][]float64, len(params))
		for i, p := range params {
			o.m[i] = make([]float64, p.Len())
			o.v[i] = make([]float64, p.Len())
		}
		o.t = 0
	}
	o.t++
	bc1 := 1 - math.Pow(o.Beta1, float64(o.t))
	bc2 := 1 - math.Pow(o.Beta2, float64(o.t))
	for i, p := range params {
		g := grads[i]
		if p.Len() != g.Len() {
			return fmt.Errorf("%w: param %d has %d elems, grad %d", ErrConfig, i, p.Len(), g.Len())
		}
		pd, gd := p.Data(), g.Data()
		m, v := o.m[i], o.v[i]
		for j := range pd {
			gj := gd[j] + o.WeightDecay*pd[j]
			m[j] = o.Beta1*m[j] + (1-o.Beta1)*gj
			v[j] = o.Beta2*v[j] + (1-o.Beta2)*gj*gj
			mhat := m[j] / bc1
			vhat := v[j] / bc2
			pd[j] -= o.LR * mhat / (math.Sqrt(vhat) + o.Eps)
		}
	}
	return nil
}

// CosineAnnealing is the cosine-annealing learning-rate schedule:
// lr(e) = Min + (Base-Min)/2 · (1 + cos(π·e/Total)).
type CosineAnnealing struct {
	Base  float64
	Min   float64
	Total int
}

// LR returns the learning rate for the (0-based) epoch.
func (s CosineAnnealing) LR(epoch int) float64 {
	if s.Total <= 0 {
		return s.Base
	}
	e := float64(epoch)
	if e > float64(s.Total) {
		e = float64(s.Total)
	}
	return s.Min + (s.Base-s.Min)/2*(1+math.Cos(math.Pi*e/float64(s.Total)))
}
