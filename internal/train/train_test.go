package train

import (
	"math"
	"testing"

	"offloadnn/internal/dataset"
	"offloadnn/internal/dnn"
	"offloadnn/internal/tensor"
)

func smallSplit(t *testing.T, classes, perTrain, perTest int, seed int64) *dataset.Split {
	t.Helper()
	g := dataset.Generator{ImageSize: 8, Noise: 0.15}
	cats := dataset.BaseCategories()[:classes]
	return dataset.Generate(g, cats, perTrain, perTest, seed)
}

func smallModel(classes int, seed int64) *dnn.Model {
	return dnn.BuildResNet18(dnn.ResNetConfig{
		InChannels: 3, NumClasses: classes, BaseWidth: 4,
		StageBlocks: [4]int{1, 1, 1, 1}, Seed: seed,
	})
}

func TestTrainerLearnsSyntheticClasses(t *testing.T) {
	sp := smallSplit(t, 3, 12, 6, 1)
	m := smallModel(3, 2)
	tr, err := NewTrainer(m, NewAdam(0.01, 1e-4), CosineAnnealing{Base: 0.01, Min: 1e-4, Total: 12}, 12, 3)
	if err != nil {
		t.Fatal(err)
	}
	before, err := tr.Evaluate(sp)
	if err != nil {
		t.Fatal(err)
	}
	var lastLoss float64
	for e := 0; e < 12; e++ {
		lastLoss, err = tr.TrainEpoch(sp)
		if err != nil {
			t.Fatal(err)
		}
	}
	after, err := tr.Evaluate(sp)
	if err != nil {
		t.Fatal(err)
	}
	if after <= before && after < 0.6 {
		t.Fatalf("training did not improve accuracy: before %v, after %v (loss %v)", before, after, lastLoss)
	}
	if tr.Epoch() != 12 {
		t.Fatalf("epoch counter = %d, want 12", tr.Epoch())
	}
}

func TestFrozenBackboneTrainsFasterPerEpoch(t *testing.T) {
	// Frozen-backbone fine-tuning must update fewer parameters. This is
	// the mechanism behind CONFIG B/C's cheap training; verify parameters
	// of frozen stages do not move.
	sp := smallSplit(t, 2, 8, 4, 4)
	m := smallModel(2, 5)
	m.FreezeStages(0, 1, 2, 3)
	frozen := m.BlockByStage(2).Params()
	snapshot := make([]float64, 0)
	for _, p := range frozen {
		snapshot = append(snapshot, p.Data()...)
	}
	tr, err := NewTrainer(m, NewSGD(0.01, 0.9, 0), CosineAnnealing{Base: 0.01, Total: 4}, 8, 6)
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < 2; e++ {
		if _, err := tr.TrainEpoch(sp); err != nil {
			t.Fatal(err)
		}
	}
	i := 0
	for _, p := range frozen {
		for _, v := range p.Data() {
			if v != snapshot[i] {
				t.Fatal("frozen stage parameters moved during training")
			}
			i++
		}
	}
}

func TestSGDMomentumState(t *testing.T) {
	o := NewSGD(0.1, 0.9, 0)
	if o.StateBytesPerParam() != 8 {
		t.Fatalf("momentum SGD state bytes = %d, want 8", o.StateBytesPerParam())
	}
	o2 := NewSGD(0.1, 0, 0)
	if o2.StateBytesPerParam() != 0 {
		t.Fatalf("plain SGD state bytes = %d, want 0", o2.StateBytesPerParam())
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	// Minimize f(x) = (x-3)^2 with Adam; gradient = 2(x-3).
	x := mustTensor(t, []float64{0}, 1)
	g := mustTensor(t, []float64{0}, 1)
	o := NewAdam(0.1, 0)
	for i := 0; i < 500; i++ {
		g.Data()[0] = 2 * (x.Data()[0] - 3)
		if err := o.Step(paramList(x), paramList(g)); err != nil {
			t.Fatal(err)
		}
	}
	if math.Abs(x.Data()[0]-3) > 0.05 {
		t.Fatalf("Adam converged to %v, want 3", x.Data()[0])
	}
}

func TestCosineAnnealingEndpoints(t *testing.T) {
	s := CosineAnnealing{Base: 0.2, Min: 0.001, Total: 100}
	if s.LR(0) != 0.2 {
		t.Fatalf("LR(0) = %v, want 0.2", s.LR(0))
	}
	if math.Abs(s.LR(100)-0.001) > 1e-12 {
		t.Fatalf("LR(100) = %v, want 0.001", s.LR(100))
	}
	mid := s.LR(50)
	if mid <= 0.001 || mid >= 0.2 {
		t.Fatalf("LR(50) = %v, want strictly between", mid)
	}
	// Monotone decreasing.
	prev := s.LR(0)
	for e := 1; e <= 100; e++ {
		cur := s.LR(e)
		if cur > prev+1e-12 {
			t.Fatalf("LR increased at epoch %d: %v > %v", e, cur, prev)
		}
		prev = cur
	}
	// Clamped past the horizon.
	if s.LR(200) != s.LR(100) {
		t.Fatal("LR should clamp past Total")
	}
}

func TestNewTrainerValidation(t *testing.T) {
	m := smallModel(2, 7)
	if _, err := NewTrainer(m, NewAdam(0.01, 0), CosineAnnealing{}, 0, 1); err == nil {
		t.Fatal("batch size 0 should be rejected")
	}
	if _, err := NewTrainer(nil, NewAdam(0.01, 0), CosineAnnealing{}, 8, 1); err == nil {
		t.Fatal("nil model should be rejected")
	}
}

func TestEvaluateClassMeasuresSingleClass(t *testing.T) {
	sp := smallSplit(t, 3, 4, 4, 8)
	m := smallModel(3, 9)
	acc, err := EvaluateClass(m, sp, 1)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0 || acc > 1 {
		t.Fatalf("class accuracy %v out of [0,1]", acc)
	}
	if _, err := EvaluateClass(m, sp, 99); err == nil {
		t.Fatal("missing class should error")
	}
}

func TestMemoryModelRanksConfigsLikePaper(t *testing.T) {
	stats := dnn.ResNet18Stats(64, 224, 61, [4]float64{})
	mm := DefaultMemoryModel()
	peak := map[string]float64{}
	for _, name := range []string{"A", "B", "C", "D", "E"} {
		cfg, err := dnn.ConfigByName(name)
		if err != nil {
			t.Fatal(err)
		}
		peak[name] = mm.PeakMiB(stats, cfg)
	}
	// Fig. 2(right): A highest; B and C markedly lower (≈1.8× less);
	// D and E in between, increasing as fewer blocks are shared.
	if !(peak["A"] > peak["E"] && peak["E"] > peak["D"] && peak["D"] > peak["C"] && peak["C"] > peak["B"]) {
		t.Fatalf("memory ordering wrong: %v", peak)
	}
	ratio := peak["A"] / peak["B"]
	if ratio < 1.4 || ratio > 2.6 {
		t.Fatalf("A/B memory ratio %v outside the ~1.8x band", ratio)
	}
}

func TestMemoryModelFullScaleMagnitude(t *testing.T) {
	// Fig. 2(right) reports 2000–5000 MiB; the calibrated model should
	// land in the same order of magnitude for CONFIG A.
	stats := dnn.ResNet18Stats(64, 224, 61, [4]float64{})
	mm := DefaultMemoryModel()
	cfgA, err := dnn.ConfigByName("A")
	if err != nil {
		t.Fatal(err)
	}
	mib := mm.PeakMiB(stats, cfgA)
	if mib < 1000 || mib > 20000 {
		t.Fatalf("CONFIG A peak %v MiB implausible", mib)
	}
}

func TestPaperConvergenceMatchesFig2(t *testing.T) {
	a, err := PaperConvergence("A")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := PaperConvergence("B")
	c, _ := PaperConvergence("C")
	d, _ := PaperConvergence("D")
	e, _ := PaperConvergence("E")

	// CONFIG A needs >200 epochs to 80%; B and C converge much faster.
	if ea := a.EpochsToReach(80, 400); ea <= 200 {
		t.Fatalf("CONFIG A reaches 80%% at epoch %d, want >200", ea)
	}
	eb := b.EpochsToReach(80, 400)
	ec := c.EpochsToReach(80, 400)
	ed := d.EpochsToReach(80, 400)
	ee := e.EpochsToReach(80, 400)
	if eb < 0 || eb > 100 {
		t.Fatalf("CONFIG B reaches 80%% at epoch %d, want fast", eb)
	}
	if ec < 0 || ec > 100 {
		t.Fatalf("CONFIG C reaches 80%% at epoch %d, want fast", ec)
	}
	if !(ec < ed && ed < ee) {
		t.Fatalf("C (%d) should beat D (%d) should beat E (%d) to 80%%", ec, ed, ee)
	}
	// After 250+ epochs CONFIG A overtakes the shared configs.
	if a.Accuracy(260) <= b.Accuracy(260) || a.Accuracy(260) <= c.Accuracy(260) {
		t.Fatalf("CONFIG A at 260 epochs (%v) should exceed B (%v) and C (%v)",
			a.Accuracy(260), b.Accuracy(260), c.Accuracy(260))
	}
	if _, err := PaperConvergence("Z"); err == nil {
		t.Fatal("unknown config should error")
	}
}

func TestPaperClassAccuracyOrdering(t *testing.T) {
	// Pruning always costs accuracy, and CONFIG B-pruned retains the most.
	for _, name := range []string{"A", "B", "C", "D", "E"} {
		full, err := PaperClassAccuracy(name)
		if err != nil {
			t.Fatal(err)
		}
		pruned, err := PaperClassAccuracy(name + "-pruned")
		if err != nil {
			t.Fatal(err)
		}
		if pruned >= full {
			t.Fatalf("CONFIG %s pruned accuracy %v >= full %v", name, pruned, full)
		}
	}
	b, _ := PaperClassAccuracy("B-pruned")
	for _, name := range []string{"A-pruned", "C-pruned", "D-pruned", "E-pruned"} {
		v, _ := PaperClassAccuracy(name)
		if v >= b {
			t.Fatalf("B-pruned (%v) should retain the most accuracy, but %s = %v", b, name, v)
		}
	}
	if _, err := PaperClassAccuracy("Q"); err == nil {
		t.Fatal("unknown config should error")
	}
}

func mustTensor(t *testing.T, data []float64, shape ...int) *tensor.Tensor {
	t.Helper()
	tt, err := tensor.FromSlice(data, shape...)
	if err != nil {
		t.Fatal(err)
	}
	return tt
}

func paramList(ts ...*tensor.Tensor) []*tensor.Tensor { return ts }

func TestMeasuredPeakMatchesAnalyticOrdering(t *testing.T) {
	// The instantiated-model memory accounting must rank Table-I configs
	// exactly like the analytic ResNet18Stats model.
	base := dnn.BuildResNet18(dnn.DefaultResNetConfig())
	stats := dnn.ResNet18Stats(8, 16, 8, [4]float64{})
	mm := DefaultMemoryModel()
	mm.BatchSize = 16

	acts := func(stage int) (int64, int64) {
		b := stats.Block(stage)
		return int64(b.ActivationElems), int64(b.OutputElems)
	}

	var prevMeasured int64 = -1
	var prevAnalytic int64 = -1
	// Order B, C, D, E, A: both accountings must be non-decreasing.
	for _, name := range []string{"B", "C", "D", "E", "A"} {
		cfg, err := dnn.ConfigByName(name)
		if err != nil {
			t.Fatal(err)
		}
		m, err := dnn.BuildConfigModel(base, cfg, "mem-"+name, 9, 77)
		if err != nil {
			t.Fatal(err)
		}
		measured := mm.MeasuredPeakBytes(m, acts)
		analytic := mm.PeakBytes(stats, cfg)
		if prevMeasured >= 0 && measured < prevMeasured {
			t.Fatalf("measured peak for %s (%d) below previous config (%d)", name, measured, prevMeasured)
		}
		if prevAnalytic >= 0 && analytic < prevAnalytic {
			t.Fatalf("analytic peak for %s (%d) below previous config (%d)", name, analytic, prevAnalytic)
		}
		prevMeasured, prevAnalytic = measured, analytic
	}
}

func TestOptimizerStepValidation(t *testing.T) {
	p := mustTensor(t, []float64{1}, 1)
	g2 := mustTensor(t, []float64{1, 2}, 2)
	if err := NewSGD(0.1, 0.9, 0).Step(paramList(p), paramList(g2)); err == nil {
		t.Fatal("mismatched param/grad shapes should error")
	}
	if err := NewAdam(0.1, 0).Step(paramList(p), nil); err == nil {
		t.Fatal("mismatched list lengths should error")
	}
}

func TestSGDWeightDecayShrinksWeights(t *testing.T) {
	p := mustTensor(t, []float64{10}, 1)
	g := mustTensor(t, []float64{0}, 1)
	o := NewSGD(0.1, 0, 0.5) // pure decay: w -= lr*wd*w
	if err := o.Step(paramList(p), paramList(g)); err != nil {
		t.Fatal(err)
	}
	if p.Data()[0] >= 10 {
		t.Fatalf("weight decay did not shrink weight: %v", p.Data()[0])
	}
}
