package train

import (
	"fmt"
	"math/rand"

	"offloadnn/internal/dataset"
	"offloadnn/internal/dnn"
	"offloadnn/internal/tensor"
)

// Trainer runs epochs of mini-batch training over a dataset split.
type Trainer struct {
	Model     *dnn.Model
	Optimizer Optimizer
	Schedule  CosineAnnealing
	BatchSize int

	rng   *rand.Rand
	epoch int
}

// NewTrainer constructs a trainer. batchSize must be positive.
func NewTrainer(m *dnn.Model, opt Optimizer, sched CosineAnnealing, batchSize int, seed int64) (*Trainer, error) {
	if batchSize <= 0 {
		return nil, fmt.Errorf("%w: batch size %d", ErrConfig, batchSize)
	}
	if m == nil || opt == nil {
		return nil, fmt.Errorf("%w: nil model or optimizer", ErrConfig)
	}
	return &Trainer{
		Model:     m,
		Optimizer: opt,
		Schedule:  sched,
		BatchSize: batchSize,
		rng:       rand.New(rand.NewSource(seed)),
	}, nil
}

// Epoch returns the number of completed epochs.
func (t *Trainer) Epoch() int { return t.epoch }

// TrainEpoch runs one pass over the training set and returns the mean
// batch loss.
func (t *Trainer) TrainEpoch(sp *dataset.Split) (float64, error) {
	idx := dataset.Shuffle(len(sp.TrainX), t.rng)
	t.Optimizer.SetLR(t.Schedule.LR(t.epoch))
	totalLoss := 0.0
	batches := 0
	for start := 0; start < len(idx); start += t.BatchSize {
		end := start + t.BatchSize
		if end > len(idx) {
			end = len(idx)
		}
		x, y, err := sp.Batch(idx[start:end])
		if err != nil {
			return 0, fmt.Errorf("train: batch: %w", err)
		}
		loss, err := t.step(x, y)
		if err != nil {
			return 0, err
		}
		totalLoss += loss
		batches++
	}
	t.epoch++
	if batches == 0 {
		return 0, fmt.Errorf("train: empty training set")
	}
	return totalLoss / float64(batches), nil
}

func (t *Trainer) step(x *tensor.Tensor, y []int) (float64, error) {
	logits, err := t.Model.Forward(x, true)
	if err != nil {
		return 0, fmt.Errorf("train: forward: %w", err)
	}
	ce, err := tensor.CrossEntropy(logits, y)
	if err != nil {
		return 0, fmt.Errorf("train: loss: %w", err)
	}
	t.Model.ZeroGrads()
	if _, err := t.Model.Backward(ce.Backward()); err != nil {
		return 0, fmt.Errorf("train: backward: %w", err)
	}
	if err := t.Optimizer.Step(t.Model.TrainableParams(), t.Model.TrainableGrads()); err != nil {
		return 0, fmt.Errorf("train: optimizer: %w", err)
	}
	return ce.Loss, nil
}

// Evaluate returns top-1 accuracy on the test set.
func (t *Trainer) Evaluate(sp *dataset.Split) (float64, error) {
	return EvaluateModel(t.Model, sp)
}

// EvaluateModel computes top-1 test accuracy of any model on a split.
func EvaluateModel(m *dnn.Model, sp *dataset.Split) (float64, error) {
	if len(sp.TestX) == 0 {
		return 0, fmt.Errorf("train: empty test set")
	}
	const evalBatch = 32
	correct := 0
	for start := 0; start < len(sp.TestX); start += evalBatch {
		end := start + evalBatch
		if end > len(sp.TestX) {
			end = len(sp.TestX)
		}
		idx := make([]int, end-start)
		for i := range idx {
			idx[i] = start + i
		}
		x, y, err := sp.TestBatch(idx)
		if err != nil {
			return 0, err
		}
		logits, err := m.ForwardBatch(x)
		if err != nil {
			return 0, err
		}
		pred, err := tensor.Argmax(logits)
		tensor.Release(logits)
		if err != nil {
			return 0, err
		}
		for i := range pred {
			if pred[i] == y[i] {
				correct++
			}
		}
	}
	return float64(correct) / float64(len(sp.TestX)), nil
}

// EvaluateClass computes the average class accuracy (recall) of a single
// class — the Fig. 3(right) metric for "electric guitar".
func EvaluateClass(m *dnn.Model, sp *dataset.Split, classID int) (float64, error) {
	var idx []int
	for i, y := range sp.TestY {
		if y == classID {
			idx = append(idx, i)
		}
	}
	if len(idx) == 0 {
		return 0, fmt.Errorf("train: class %d has no test examples", classID)
	}
	x, y, err := sp.TestBatch(idx)
	if err != nil {
		return 0, err
	}
	logits, err := m.ForwardBatch(x)
	if err != nil {
		return 0, err
	}
	pred, err := tensor.Argmax(logits)
	tensor.Release(logits)
	if err != nil {
		return 0, err
	}
	correct := 0
	for i := range pred {
		if pred[i] == y[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(idx)), nil
}
