// Package workload builds the DOT problem instances of the paper's
// evaluation (Table IV): the small-scale scenario (T = 1..5 tasks, 3 DNNs
// × 5 paths) used to compare OffloaDNN against the optimum, and the
// large-scale scenario (20 tasks, 125 DNNs × 10 paths, three request-rate
// loads) used against SEM-O-RAN. The per-block costs follow the shape
// measured by the profiler on the real (scaled) ResNet-18 — later stages
// cost more compute and memory, 80% structured pruning cuts compute to
// ~25% and memory to ~20% — calibrated to paper magnitudes (full-path
// inference ≈ 8.5 ms, full DNN deployment ≈ 1.06 GB).
package workload

import (
	"fmt"
	"math"

	"offloadnn/internal/core"
)

// CatalogParams parameterizes DNN-catalog generation.
type CatalogParams struct {
	// NumDNNs is |D|: how many dynamic DNN structures to generate.
	NumDNNs int
	// PathsPerDNN is |Π^d_τ|: candidate paths per DNN per task.
	PathsPerDNN int
	// StageComputeSeconds is the full per-stage inference compute time.
	StageComputeSeconds [4]float64
	// StageMemoryGB is the full per-stage deployed memory.
	StageMemoryGB [4]float64
	// PruneComputeRatio scales compute of 80%-pruned blocks (~0.25).
	PruneComputeRatio float64
	// PruneMemoryRatio scales memory of 80%-pruned blocks (~0.2).
	PruneMemoryRatio float64
	// FtTrainPerStage is the fine-tuning cost of a task-specific stage-s
	// block: ct = FtTrainPerStage·s seconds.
	FtTrainPerStage float64
	// SharedPrunedTrainPerStage is the one-time cost of producing a
	// shared pruned base block: ct = SharedPrunedTrainPerStage·s.
	SharedPrunedTrainPerStage float64
	// BaseAccuracy is the accuracy of a fully fine-tuned unpruned path.
	BaseAccuracy float64
	// SharedStage4Penalty is the accuracy lost when the final stage is a
	// generic base block rather than task-specific (high-level features
	// do not transfer).
	SharedStage4Penalty float64
	// SharedBasePenalty is the accuracy lost per shared early stage.
	SharedBasePenalty float64
	// PrunedFtPenalty is the accuracy lost per pruned task-specific stage.
	PrunedFtPenalty float64
	// PrunedBasePenalty is the accuracy lost per pruned shared stage.
	PrunedBasePenalty float64
	// Family optionally namespaces the generated blocks into a second
	// architecture family (e.g., "lite" for a MobileNetV2-class catalog);
	// empty means the default ResNet-18 family.
	Family string
	// Precisions lists the kernel-precision tiers every block variant is
	// offered at; empty means float64 only (the seed catalog, unchanged).
	// Non-f64 tiers emit "@f32"/"@i8"-suffixed block and path IDs with
	// compute/memory scaled by the tier's ratios and the tier's accuracy
	// penalty subtracted — quantization as just another priced variant.
	Precisions []PrecisionSpec
	// Seed drives the deterministic jitter.
	Seed int64
}

// PrecisionSpec prices one kernel-precision tier relative to the f64
// baseline.
type PrecisionSpec struct {
	// Name is the tier's suffix spelling: "f64", "f32" or "i8".
	Name string
	// ComputeRatio scales c(s) (f32 ≈ 0.30, i8 ≈ 0.22 on the profiled
	// AVX2 kernels).
	ComputeRatio float64
	// MemoryRatio scales µ(s) (i8 stores 1 byte/param vs the charged 4).
	MemoryRatio float64
	// AccuracyPenalty is subtracted from the path accuracy for every path
	// deployed at the tier (quantization noise; the install-time gate
	// enforces the real bound).
	AccuracyPenalty float64
}

// DefaultPrecisionSpec returns the profiler-calibrated pricing of a tier.
func DefaultPrecisionSpec(name string) PrecisionSpec {
	switch name {
	case "f32":
		return PrecisionSpec{Name: "f32", ComputeRatio: 0.30, MemoryRatio: 1, AccuracyPenalty: 0.002}
	case "i8":
		return PrecisionSpec{Name: "i8", ComputeRatio: 0.22, MemoryRatio: 0.25, AccuracyPenalty: 0.01}
	default:
		return PrecisionSpec{Name: "f64", ComputeRatio: 1, MemoryRatio: 1}
	}
}

// precisionTiers is the effective tier list (f64 only when unset).
func (p CatalogParams) precisionTiers() []PrecisionSpec {
	if len(p.Precisions) == 0 {
		return []PrecisionSpec{DefaultPrecisionSpec("f64")}
	}
	return p.Precisions
}

// isF64 reports whether a tier is the baseline (emits unsuffixed IDs).
func (ps PrecisionSpec) isF64() bool { return ps.Name == "" || ps.Name == "f64" }

// SmallCatalogParams returns the 3-DNN × 5-path catalog of the small
// scenario.
func SmallCatalogParams() CatalogParams {
	return CatalogParams{
		NumDNNs:                   3,
		PathsPerDNN:               5,
		StageComputeSeconds:       [4]float64{0.0012, 0.0017, 0.0024, 0.0032},
		StageMemoryGB:             [4]float64{0.10, 0.16, 0.28, 0.52},
		PruneComputeRatio:         0.25,
		PruneMemoryRatio:          0.2,
		FtTrainPerStage:           30,
		SharedPrunedTrainPerStage: 3,
		BaseAccuracy:              0.93,
		SharedStage4Penalty:       0.35,
		SharedBasePenalty:         0.01,
		PrunedFtPenalty:           0.015,
		PrunedBasePenalty:         0.02,
		Seed:                      1,
	}
}

// LargeCatalogParams returns the 125-DNN × 10-path catalog of the large
// scenario.
func LargeCatalogParams() CatalogParams {
	p := SmallCatalogParams()
	p.NumDNNs = 125
	p.PathsPerDNN = 10
	p.FtTrainPerStage = 10
	p.Seed = 2
	return p
}

// hash64 mixes integers into a deterministic pseudo-random value in [0,1).
func hash64(vals ...int64) float64 {
	var h uint64 = 14695981039346656037
	for _, v := range vals {
		h ^= uint64(v)
		h *= 1099511628211
		h ^= h >> 33
	}
	return float64(h%1_000_000) / 1_000_000
}

// pathShape describes one path's composition.
type pathShape struct {
	sharedPrefix int  // leading stages from the shared base (0..4)
	basePruned   bool // shared stages use the pruned base variant
	ftPruned     bool // task-specific stages use the pruned fine-tuned variant
}

// shapeFor derives the composition of path j on DNN d. The first DNNs
// cover the Table-I-like grid (unpruned, fine-tuned-pruned, all-pruned
// variants across shared-prefix lengths); the remainder fan out over the
// same grid, differing by cost/accuracy jitter.
func shapeFor(d, j, pathsPerDNN int) pathShape {
	prefix := j * 5 / pathsPerDNN // 0..4 across the path index
	return pathShape{
		sharedPrefix: prefix,
		basePruned:   d%3 == 2,
		ftPruned:     d%3 >= 1,
	}
}

// blockIDs of the global catalog. The default family uses the "base"/"ft"
// namespaces; a named family prefixes its own.
func (p CatalogParams) baseBlockID(stage int, pruned bool) string {
	prefix := "base"
	if p.Family != "" {
		prefix = p.Family + "/base"
	}
	if pruned {
		return fmt.Sprintf("%s/s%d/p80", prefix, stage)
	}
	return fmt.Sprintf("%s/s%d", prefix, stage)
}

func (p CatalogParams) ftBlockID(taskID string, stage int, pruned bool) string {
	prefix := "ft"
	if p.Family != "" {
		prefix = p.Family + "/ft"
	}
	if pruned {
		return fmt.Sprintf("%s/%s/s%d/p80", prefix, taskID, stage)
	}
	return fmt.Sprintf("%s/%s/s%d", prefix, taskID, stage)
}

// registerBlocks ensures the blocks of a shape exist in the catalog at
// the given precision tier and returns the path's block IDs. A non-f64
// tier registers "@<tier>"-suffixed variants with scaled compute and
// memory; training cost is NOT scaled — the quantized variant shares the
// tier-independent trained weights (post-training quantization).
func (p CatalogParams) registerBlocks(blocks map[string]core.BlockSpec, taskID string, sh pathShape, ps PrecisionSpec) []string {
	ids := make([]string, 0, 4)
	for stage := 1; stage <= 4; stage++ {
		shared := stage <= sh.sharedPrefix
		var id string
		var spec core.BlockSpec
		c := p.StageComputeSeconds[stage-1]
		m := p.StageMemoryGB[stage-1]
		switch {
		case shared && !sh.basePruned:
			id = p.baseBlockID(stage, false)
			spec = core.BlockSpec{ID: id, ComputeSeconds: c, MemoryGB: m}
		case shared && sh.basePruned:
			id = p.baseBlockID(stage, true)
			spec = core.BlockSpec{
				ID:             id,
				ComputeSeconds: c * p.PruneComputeRatio,
				MemoryGB:       m * p.PruneMemoryRatio,
				TrainSeconds:   p.SharedPrunedTrainPerStage * float64(stage),
			}
		case !shared && !sh.ftPruned:
			id = p.ftBlockID(taskID, stage, false)
			spec = core.BlockSpec{
				ID:             id,
				ComputeSeconds: c,
				MemoryGB:       m,
				TrainSeconds:   p.FtTrainPerStage * float64(stage),
			}
		default:
			id = p.ftBlockID(taskID, stage, true)
			spec = core.BlockSpec{
				ID:             id,
				ComputeSeconds: c * p.PruneComputeRatio,
				MemoryGB:       m * p.PruneMemoryRatio,
				TrainSeconds:   p.FtTrainPerStage * float64(stage),
			}
		}
		if !ps.isF64() {
			id += "@" + ps.Name
			spec.ID = id
			spec.ComputeSeconds *= ps.ComputeRatio
			spec.MemoryGB *= ps.MemoryRatio
		}
		if _, ok := blocks[id]; !ok {
			blocks[id] = spec
		}
		ids = append(ids, id)
	}
	return ids
}

// accuracy computes the attained accuracy of a shape for a task, with
// deterministic jitter distinguishing the many DNN variants.
func (p CatalogParams) accuracy(taskIdx, d, j int, sh pathShape) float64 {
	acc := p.BaseAccuracy
	if sh.sharedPrefix >= 4 {
		acc -= p.SharedStage4Penalty
	}
	early := sh.sharedPrefix
	if early > 3 {
		early = 3
	}
	acc -= p.SharedBasePenalty * float64(early)
	if sh.basePruned {
		acc -= p.PrunedBasePenalty * float64(early)
	}
	if sh.ftPruned {
		acc -= p.PrunedFtPenalty * float64(4-sh.sharedPrefix)
	}
	// ±1% jitter across (task, DNN, path).
	acc += (hash64(p.Seed, int64(taskIdx), int64(d), int64(j)) - 0.5) * 0.02
	return math.Max(0, acc)
}

// BuildPaths generates the candidate paths of one task over the whole DNN
// catalog, registering any new blocks into the shared block map.
func (p CatalogParams) BuildPaths(blocks map[string]core.BlockSpec, taskID string, taskIdx int) []core.PathSpec {
	tiers := p.precisionTiers()
	paths := make([]core.PathSpec, 0, p.NumDNNs*p.PathsPerDNN*len(tiers))
	for d := 0; d < p.NumDNNs; d++ {
		for j := 0; j < p.PathsPerDNN; j++ {
			sh := shapeFor(d, j, p.PathsPerDNN)
			dnnName := fmt.Sprintf("dnn-%d", d)
			if p.Family != "" {
				dnnName = fmt.Sprintf("%s-dnn-%d", p.Family, d)
			}
			for _, ps := range tiers {
				ids := p.registerBlocks(blocks, taskID, sh, ps)
				pathID := fmt.Sprintf("d%d/π%d", d, j)
				acc := p.accuracy(taskIdx, d, j, sh)
				if !ps.isF64() {
					pathID += "@" + ps.Name
					acc = math.Max(0, acc-ps.AccuracyPenalty)
				}
				paths = append(paths, core.PathSpec{
					ID:       pathID,
					DNN:      dnnName,
					Blocks:   ids,
					Accuracy: acc,
				})
			}
		}
	}
	return paths
}
