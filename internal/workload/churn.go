package workload

import (
	"fmt"
	"sort"
	"time"

	"offloadnn/internal/core"
)

// ChurnKind distinguishes task arrivals from departures in a serving
// timeline.
type ChurnKind int

// Churn event kinds.
const (
	// ChurnRegister submits the task to the serving daemon.
	ChurnRegister ChurnKind = iota
	// ChurnDeregister withdraws it.
	ChurnDeregister
	// ChurnRateChange updates a live task's request rate λ — the cheapest
	// churn for an incremental solver, since the rate enters only the
	// allocation subproblem, not tree construction. Emitted only when
	// ChurnParams.RateChurn is set.
	ChurnRateChange
)

// String implements fmt.Stringer.
func (k ChurnKind) String() string {
	switch k {
	case ChurnRegister:
		return "register"
	case ChurnDeregister:
		return "deregister"
	case ChurnRateChange:
		return "rate-change"
	default:
		return fmt.Sprintf("churn(%d)", int(k))
	}
}

// ChurnEvent is one arrival or departure in a dynamic serving timeline.
type ChurnEvent struct {
	// At is the event offset from the start of the run.
	At time.Duration
	// Kind is register or deregister.
	Kind ChurnKind
	// Task carries the full request fields for registrations; for
	// deregistrations only the ID is meaningful, and for rate changes the
	// ID and the new Rate.
	Task core.Task
}

// ChurnParams parameterizes a churn timeline.
type ChurnParams struct {
	// Tasks is how many of the five Table-IV small-scenario tasks
	// participate (1..5).
	Tasks int
	// Duration is the run length the events are scheduled within.
	Duration time.Duration
	// Seed drives the deterministic departure/return jitter.
	Seed int64
	// RateChurn additionally schedules a mid-run rate change for tasks
	// that stay registered throughout, exercising the delta kind that
	// leaves the cached tree fully intact. Off by default so existing
	// drivers see the register/deregister-only timeline.
	RateChurn bool
}

// ChurnTimeline derives a deterministic register/deregister schedule over
// the Table-IV small-scenario task set, the dynamic-workload counterpart
// of the paper's one-shot admission round: all tasks arrive staggered at
// the start, most depart mid-run, and some return toward the end — each
// transition forcing the serving daemon through another epoch of the
// Fig. 4 loop. Events are sorted by time; a task's deregistration always
// follows its registration. The same params always yield the same
// timeline.
func ChurnTimeline(p ChurnParams) ([]ChurnEvent, error) {
	if p.Tasks < 1 || p.Tasks > 5 {
		return nil, fmt.Errorf("workload: churn timeline supports 1..5 tasks, got %d", p.Tasks)
	}
	if p.Duration <= 0 {
		return nil, fmt.Errorf("workload: churn duration %v must be positive", p.Duration)
	}
	var events []ChurnEvent
	for i := 1; i <= p.Tasks; i++ {
		task, err := SmallTask(i)
		if err != nil {
			return nil, err
		}
		// Staggered arrival in the first 10% of the run.
		arrive := time.Duration(float64(i-1) / float64(p.Tasks) * 0.1 * float64(p.Duration))
		events = append(events, ChurnEvent{At: arrive, Kind: ChurnRegister, Task: task})
		// ~80% of tasks depart mid-run (35–60% of the duration).
		if hash64(p.Seed, int64(i), 1) >= 0.8 {
			// Stayers optionally get a mid-run rate change (40–65% of the
			// duration), scaled to 0.5–1.5× the original rate.
			if p.RateChurn {
				at := time.Duration((0.4 + 0.25*hash64(p.Seed, int64(i), 5)) * float64(p.Duration))
				rate := task.Rate * (0.5 + hash64(p.Seed, int64(i), 6))
				events = append(events, ChurnEvent{
					At:   at,
					Kind: ChurnRateChange,
					Task: core.Task{ID: task.ID, Rate: rate},
				})
			}
			continue
		}
		depart := time.Duration((0.35 + 0.25*hash64(p.Seed, int64(i), 2)) * float64(p.Duration))
		events = append(events, ChurnEvent{At: depart, Kind: ChurnDeregister, Task: core.Task{ID: task.ID}})
		// ~60% of departed tasks return late (70–90% of the duration).
		if hash64(p.Seed, int64(i), 3) >= 0.6 {
			continue
		}
		back := time.Duration((0.7 + 0.2*hash64(p.Seed, int64(i), 4)) * float64(p.Duration))
		events = append(events, ChurnEvent{At: back, Kind: ChurnRegister, Task: task})
	}
	sort.SliceStable(events, func(a, b int) bool { return events[a].At < events[b].At })
	return events, nil
}
