package workload

import (
	"testing"
	"time"
)

func TestChurnTimelineShape(t *testing.T) {
	events, err := ChurnTimeline(ChurnParams{Tasks: 5, Duration: 10 * time.Second, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) < 5 {
		t.Fatalf("got %d events, want at least the 5 initial registrations", len(events))
	}
	registered := make(map[string]bool)
	registrations := 0
	for i, e := range events {
		if e.At < 0 || e.At > 10*time.Second {
			t.Fatalf("event %d at %v outside [0, 10s]", i, e.At)
		}
		if i > 0 && e.At < events[i-1].At {
			t.Fatalf("events not sorted: %v after %v", e.At, events[i-1].At)
		}
		switch e.Kind {
		case ChurnRegister:
			if registered[e.Task.ID] {
				t.Fatalf("event %d re-registers live task %s", i, e.Task.ID)
			}
			if e.Task.Rate <= 0 || e.Task.MaxLatency <= 0 {
				t.Fatalf("registration %d carries incomplete task %+v", i, e.Task)
			}
			registered[e.Task.ID] = true
			registrations++
		case ChurnDeregister:
			if !registered[e.Task.ID] {
				t.Fatalf("event %d deregisters task %s before registration", i, e.Task.ID)
			}
			registered[e.Task.ID] = false
		default:
			t.Fatalf("event %d has unknown kind %v", i, e.Kind)
		}
	}
	if registrations < 5 {
		t.Fatalf("got %d registrations, want ≥ 5", registrations)
	}
}

func TestChurnTimelineDeterministic(t *testing.T) {
	p := ChurnParams{Tasks: 4, Duration: time.Minute, Seed: 7}
	a, err := ChurnTimeline(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ChurnTimeline(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].At != b[i].At || a[i].Kind != b[i].Kind || a[i].Task.ID != b[i].Task.ID {
			t.Fatalf("event %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestChurnTimelineRejectsBadParams(t *testing.T) {
	if _, err := ChurnTimeline(ChurnParams{Tasks: 0, Duration: time.Second}); err == nil {
		t.Fatal("Tasks=0 accepted")
	}
	if _, err := ChurnTimeline(ChurnParams{Tasks: 6, Duration: time.Second}); err == nil {
		t.Fatal("Tasks=6 accepted")
	}
	if _, err := ChurnTimeline(ChurnParams{Tasks: 3, Duration: 0}); err == nil {
		t.Fatal("Duration=0 accepted")
	}
}

func TestSmallTaskMatchesScenario(t *testing.T) {
	in, err := SmallScenario(5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		task, err := SmallTask(i)
		if err != nil {
			t.Fatal(err)
		}
		ref := in.Tasks[i-1]
		if task.ID != ref.ID || task.Priority != ref.Priority || task.Rate != ref.Rate ||
			task.MinAccuracy != ref.MinAccuracy || task.MaxLatency != ref.MaxLatency ||
			task.InputBits != ref.InputBits || task.SNRdB != ref.SNRdB {
			t.Fatalf("SmallTask(%d) = %+v, scenario task = %+v", i, task, ref)
		}
	}
	if _, err := SmallTask(0); err == nil {
		t.Fatal("SmallTask(0) accepted")
	}
}
