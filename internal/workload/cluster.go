package workload

import (
	"fmt"

	"offloadnn/internal/core"
)

// ClusterScenario builds the paper's 20-task large scenario for an
// n-node edge cluster: the full task set and block catalog at the given
// load, plus each node's equal share of the Table-IV resource pool.
// Compute and memory are divided evenly, radio blocks are integer-split
// with the remainder spread over the first nodes, and every node keeps
// the whole training budget Ct — fine-tuning headroom is per edge node,
// not a fleet-wide pool. All shares reference the scenario's capacity
// model, so per-node solves price transmission identically.
func ClusterScenario(load Load, nodes int) (*core.Instance, []core.Resources, error) {
	if nodes < 1 {
		return nil, nil, fmt.Errorf("workload: cluster scenario needs at least 1 node, got %d", nodes)
	}
	in, err := LargeScenario(load)
	if err != nil {
		return nil, nil, err
	}
	shares := make([]core.Resources, nodes)
	base, extra := in.Res.RBs/nodes, in.Res.RBs%nodes
	for i := range shares {
		shares[i] = in.Res
		shares[i].RBs = base
		if i < extra {
			shares[i].RBs++
		}
		shares[i].ComputeSeconds = in.Res.ComputeSeconds / float64(nodes)
		shares[i].MemoryGB = in.Res.MemoryGB / float64(nodes)
	}
	return in, shares, nil
}
