package workload

import "testing"

func TestClusterScenarioShares(t *testing.T) {
	in, shares, err := ClusterScenario(LoadMedium, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(shares) != 3 {
		t.Fatalf("got %d shares, want 3", len(shares))
	}
	rbs := 0
	var compute, memory float64
	for i, s := range shares {
		rbs += s.RBs
		compute += s.ComputeSeconds
		memory += s.MemoryGB
		if s.TrainBudgetSeconds != in.Res.TrainBudgetSeconds {
			t.Errorf("share %d train budget %v, want the full %v per node", i, s.TrainBudgetSeconds, in.Res.TrainBudgetSeconds)
		}
		if s.Capacity == nil {
			t.Errorf("share %d lost the capacity model", i)
		}
	}
	if rbs != in.Res.RBs {
		t.Errorf("shares hold %d RBs total, pool has %d", rbs, in.Res.RBs)
	}
	if diff := compute - in.Res.ComputeSeconds; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("shares hold %v compute total, pool has %v", compute, in.Res.ComputeSeconds)
	}
	if diff := memory - in.Res.MemoryGB; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("shares hold %v GB total, pool has %v", memory, in.Res.MemoryGB)
	}
	if _, _, err := ClusterScenario(LoadMedium, 0); err == nil {
		t.Error("0-node cluster scenario did not error")
	}
}
