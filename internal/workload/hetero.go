package workload

import (
	"fmt"
	"time"

	"offloadnn/internal/core"
	"offloadnn/internal/radio"
)

// HeterogeneousScenario is an extension beyond the paper's Table-IV
// setup: the 20-task large scenario served by a catalog spanning *two*
// architecture families — the ResNet-18-derived blocks the paper uses and
// a MobileNetV2-class "lite" family (the alternative the paper's
// introduction cites: ~8.7× fewer parameters at a few points lower
// accuracy). It exercises cross-family selection: accuracy-hungry tasks
// stay on ResNet paths while relaxed tasks migrate to lite blocks.
func HeterogeneousScenario(load Load) (*core.Instance, error) {
	rate, err := load.Rate()
	if err != nil {
		return nil, err
	}
	resnet := LargeCatalogParams()
	resnet.NumDNNs = 85

	lite := LargeCatalogParams()
	lite.Family = "lite"
	lite.NumDNNs = 40
	lite.BaseAccuracy = 0.89 // MobileNet-class ceiling
	for s := range lite.StageComputeSeconds {
		lite.StageComputeSeconds[s] *= 0.4
		lite.StageMemoryGB[s] *= 0.35
	}
	lite.FtTrainPerStage *= 0.6
	lite.Seed = 3

	in := &core.Instance{
		Blocks: make(map[string]core.BlockSpec),
		Res: core.Resources{
			RBs:                100,
			ComputeSeconds:     10,
			MemoryGB:           16,
			TrainBudgetSeconds: 1000,
			Capacity:           radio.PaperRate(),
		},
		Alpha: 0.5,
	}
	const tasks = 20
	for t := 1; t <= tasks; t++ {
		id := fmt.Sprintf("task-%d", t)
		paths := resnet.BuildPaths(in.Blocks, id, t-1)
		paths = append(paths, lite.BuildPaths(in.Blocks, id, t-1)...)
		in.Tasks = append(in.Tasks, core.Task{
			ID:          id,
			Priority:    1 - 0.05*float64(t-1),
			Rate:        rate,
			MinAccuracy: 0.8 - 0.015*float64(t),
			MaxLatency:  time.Duration(200+20*t) * time.Millisecond,
			InputBits:   350e3,
			SNRdB:       20,
			Paths:       paths,
		})
	}
	if err := in.Validate(); err != nil {
		return nil, fmt.Errorf("workload: heterogeneous scenario: %w", err)
	}
	return in, nil
}
