package workload

import (
	"strings"
	"testing"

	"offloadnn/internal/core"
	"offloadnn/internal/radio"
)

// precisionInstance rebuilds the Table-IV small instance with the given
// precision tiers and compute budget.
func precisionInstance(t *testing.T, precisions []PrecisionSpec, compute float64) *core.Instance {
	t.Helper()
	params := SmallCatalogParams()
	params.Precisions = precisions
	in := &core.Instance{
		Blocks: make(map[string]core.BlockSpec),
		Res: core.Resources{
			RBs: 50, ComputeSeconds: compute, MemoryGB: 8,
			TrainBudgetSeconds: 1000, Capacity: radio.PaperRate(),
		},
		Alpha: 0.5,
	}
	for i := 0; i < 5; i++ {
		task, err := SmallTask(i + 1)
		if err != nil {
			t.Fatal(err)
		}
		task.Paths = params.BuildPaths(in.Blocks, task.ID, i)
		in.Tasks = append(in.Tasks, task)
	}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	return in
}

func TestPrecisionTiersEmitSuffixedVariants(t *testing.T) {
	tiers := []PrecisionSpec{DefaultPrecisionSpec("f64"), DefaultPrecisionSpec("i8")}
	in := precisionInstance(t, tiers, 2.5)
	base := precisionInstance(t, nil, 2.5)
	task := in.Tasks[0]
	if got, want := len(task.Paths), 2*len(base.Tasks[0].Paths); got != want {
		t.Fatalf("%d paths with two tiers, want %d", got, want)
	}
	var sawQuant bool
	for _, p := range task.Paths {
		if !strings.HasSuffix(p.ID, "@i8") {
			continue
		}
		sawQuant = true
		for _, bid := range p.Blocks {
			if !strings.HasSuffix(bid, "@i8") {
				t.Fatalf("quantized path %s holds unsuffixed block %s", p.ID, bid)
			}
			spec := in.Blocks[bid]
			baseSpec, ok := base.Blocks[strings.TrimSuffix(bid, "@i8")]
			if !ok {
				t.Fatalf("no f64 counterpart for %s", bid)
			}
			if spec.ComputeSeconds >= baseSpec.ComputeSeconds {
				t.Fatalf("i8 block %s compute %v not cheaper than f64 %v",
					bid, spec.ComputeSeconds, baseSpec.ComputeSeconds)
			}
			if spec.MemoryGB >= baseSpec.MemoryGB {
				t.Fatalf("i8 block %s memory %v not smaller than f64 %v",
					bid, spec.MemoryGB, baseSpec.MemoryGB)
			}
			if spec.TrainSeconds != baseSpec.TrainSeconds {
				t.Fatalf("i8 block %s train cost %v != f64 %v (post-training quantization shares training)",
					bid, spec.TrainSeconds, baseSpec.TrainSeconds)
			}
		}
	}
	if !sawQuant {
		t.Fatal("no quantized paths emitted")
	}
}

func TestQuantizedAccuracyPenaltyApplied(t *testing.T) {
	tiers := []PrecisionSpec{DefaultPrecisionSpec("f64"), DefaultPrecisionSpec("i8")}
	in := precisionInstance(t, tiers, 2.5)
	byID := map[string]core.PathSpec{}
	for _, p := range in.Tasks[0].Paths {
		byID[p.ID] = p
	}
	for id, p := range byID {
		if !strings.HasSuffix(id, "@i8") {
			continue
		}
		basePath, ok := byID[strings.TrimSuffix(id, "@i8")]
		if !ok {
			t.Fatalf("no f64 counterpart for path %s", id)
		}
		want := basePath.Accuracy - DefaultPrecisionSpec("i8").AccuracyPenalty
		if want < 0 {
			want = 0
		}
		if p.Accuracy != want {
			t.Fatalf("path %s accuracy %v, want %v", id, p.Accuracy, want)
		}
	}
}

// The point of surfacing quantization to the solver: under a starved
// compute budget, offering i8 variants must admit at least one more task
// or strictly lower the objective.
func TestQuantizedVariantsImproveAdmissionOrCost(t *testing.T) {
	const compute = 0.05 // far below the Table-IV 2.5 s: compute-starved
	base := precisionInstance(t, nil, compute)
	quant := precisionInstance(t,
		[]PrecisionSpec{DefaultPrecisionSpec("f64"), DefaultPrecisionSpec("i8")}, compute)

	sb, err := core.SolveOffloaDNN(base)
	if err != nil {
		t.Fatal(err)
	}
	sq, err := core.SolveOffloaDNN(quant)
	if err != nil {
		t.Fatal(err)
	}
	admitted := func(s *core.Solution) int {
		n := 0
		for _, a := range s.Assignments {
			if a.Admitted() {
				n++
			}
		}
		return n
	}
	ab, aq := admitted(sb), admitted(sq)
	if aq < ab {
		t.Fatalf("quantized catalog admits %d < baseline %d", aq, ab)
	}
	if aq == ab && sq.Cost >= sb.Cost-1e-12 {
		t.Fatalf("quantized catalog: same admission (%d) and no cost gain (%.6f vs %.6f)",
			aq, sq.Cost, sb.Cost)
	}
	var usedQuant bool
	for _, a := range sq.Assignments {
		if a.Admitted() && strings.Contains(a.Path.ID, "@i8") {
			usedQuant = true
			break
		}
	}
	if !usedQuant {
		t.Fatal("solver never picked a quantized path despite the gain")
	}
}

// Precision pricing must not disturb the seed catalog: no tiers, no
// suffixes, identical IDs.
func TestNoPrecisionTiersMatchesSeedCatalog(t *testing.T) {
	in := precisionInstance(t, nil, 2.5)
	for _, task := range in.Tasks {
		for _, p := range task.Paths {
			if strings.Contains(p.ID, "@") {
				t.Fatalf("unexpected precision suffix in path %s", p.ID)
			}
			for _, bid := range p.Blocks {
				if strings.Contains(bid, "@") {
					t.Fatalf("unexpected precision suffix in block %s", bid)
				}
			}
		}
	}
}
