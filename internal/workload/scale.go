package workload

import (
	"fmt"
	"time"

	"offloadnn/internal/core"
	"offloadnn/internal/radio"
)

// ScaleScenario builds a T-task instance for the 1k–10k solver-scale
// experiments: the small catalog's 3-DNN × 5-path grid per task, with
// deterministically jittered request-side fields (λ ∈ [1,3) req/s,
// A ∈ [0.30,0.45), L ∈ [250,600) ms, p ∈ [0.2,1)) and a resource pool
// that grows linearly with the task count — R = 3T RBs, C = 0.006T s/s,
// M = 8 + 0.05T GB, Ct = 1000 s — so contention stays meaningful at
// every scale: radio and compute admit most but not all of the load,
// and the accuracy floors keep the fully-shared pruned paths feasible,
// exercising cross-task block sharing instead of exploding the deployed
// memory. Everything is a pure function of T.
func ScaleScenario(tasks int) (*core.Instance, error) {
	if tasks < 1 {
		return nil, fmt.Errorf("workload: scale scenario needs at least 1 task, got %d", tasks)
	}
	params := SmallCatalogParams()
	params.Seed = 7
	in := &core.Instance{
		Blocks: make(map[string]core.BlockSpec, 8*tasks+16),
		Res: core.Resources{
			RBs:                3 * tasks,
			ComputeSeconds:     0.006 * float64(tasks),
			MemoryGB:           8 + 0.05*float64(tasks),
			TrainBudgetSeconds: 1000,
			Capacity:           radio.PaperRate(),
		},
		Alpha: 0.5,
	}
	in.Tasks = make([]core.Task, 0, tasks)
	for t := 0; t < tasks; t++ {
		id := fmt.Sprintf("task-%d", t+1)
		in.Tasks = append(in.Tasks, core.Task{
			ID:          id,
			Priority:    0.2 + 0.8*hash64(params.Seed, 11, int64(t)),
			Rate:        1 + 2*hash64(params.Seed, 12, int64(t)),
			MinAccuracy: 0.30 + 0.15*hash64(params.Seed, 13, int64(t)),
			MaxLatency:  time.Duration((250 + 350*hash64(params.Seed, 14, int64(t))) * float64(time.Millisecond)),
			InputBits:   350e3,
			SNRdB:       20,
			Paths:       params.BuildPaths(in.Blocks, id, t),
		})
	}
	if err := in.Validate(); err != nil {
		return nil, fmt.Errorf("workload: scale scenario: %w", err)
	}
	return in, nil
}
