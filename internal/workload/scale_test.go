package workload

import (
	"reflect"
	"testing"
)

func TestScaleScenarioShape(t *testing.T) {
	in, err := ScaleScenario(1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(in.Tasks) != 1000 {
		t.Fatalf("got %d tasks", len(in.Tasks))
	}
	if err := in.Validate(); err != nil {
		t.Fatalf("invalid instance: %v", err)
	}
	if in.Res.RBs != 3000 {
		t.Fatalf("R = %d, want 3000", in.Res.RBs)
	}
	for i, task := range in.Tasks {
		if len(task.Paths) == 0 {
			t.Fatalf("task %d has no paths", i)
		}
		if task.Rate < 1 || task.Rate >= 3 {
			t.Fatalf("task %d rate %v outside [1,3)", i, task.Rate)
		}
	}
	if _, err := ScaleScenario(0); err == nil {
		t.Fatal("ScaleScenario(0) succeeded")
	}
}

// The scale scenario must be a pure function of the task count: serve
// tests, benchmarks and the recorded BENCH_solver.json all assume two
// builds of the same size are the same instance.
func TestScaleScenarioDeterministic(t *testing.T) {
	a, err := ScaleScenario(300)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ScaleScenario(300)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Res, b.Res) || a.Alpha != b.Alpha {
		t.Fatal("resources differ between builds")
	}
	if len(a.Tasks) != len(b.Tasks) || len(a.Blocks) != len(b.Blocks) {
		t.Fatal("sizes differ between builds")
	}
	for i := range a.Tasks {
		at, bt := a.Tasks[i], b.Tasks[i]
		if at.ID != bt.ID || at.Priority != bt.Priority || at.Rate != bt.Rate ||
			at.MinAccuracy != bt.MinAccuracy || at.MaxLatency != bt.MaxLatency ||
			len(at.Paths) != len(bt.Paths) {
			t.Fatalf("task %d differs between builds", i)
		}
	}
}
