package workload

import (
	"fmt"
	"time"

	"offloadnn/internal/core"
	"offloadnn/internal/radio"
)

// Load is the task-request load level of the large scenario.
type Load int

// Load levels (Table IV: λ = 2.5, 5, 7.5 req/s for every task).
const (
	LoadLow Load = iota + 1
	LoadMedium
	LoadHigh
)

// String implements fmt.Stringer.
func (l Load) String() string {
	switch l {
	case LoadLow:
		return "low"
	case LoadMedium:
		return "medium"
	case LoadHigh:
		return "high"
	default:
		return fmt.Sprintf("load(%d)", int(l))
	}
}

// Rate returns the per-task request rate of the load level.
func (l Load) Rate() (float64, error) {
	switch l {
	case LoadLow:
		return 2.5, nil
	case LoadMedium:
		return 5, nil
	case LoadHigh:
		return 7.5, nil
	default:
		return 0, fmt.Errorf("workload: unknown load %d", int(l))
	}
}

// SmallTask returns the Table-IV small-scenario task τ = t (1-based,
// t ∈ 1..5) without candidate paths: λ = 5 req/s, A_τ ∈ [0.9..0.5],
// L_τ ∈ [200..600] ms, p_τ ∈ [0.8..0.4], β = 350 Kb, σ = 20 dB. These
// are the request-side fields a UE submits to the serving daemon, which
// builds the candidate paths from its own DNN catalog.
func SmallTask(t int) (core.Task, error) {
	if t < 1 || t > 5 {
		return core.Task{}, fmt.Errorf("workload: small task index %d outside 1..5", t)
	}
	accuracies := []float64{0.9, 0.8, 0.7, 0.6, 0.5}
	latencies := []time.Duration{200, 300, 400, 500, 600}
	priorities := []float64{0.8, 0.7, 0.6, 0.5, 0.4}
	return core.Task{
		ID:          fmt.Sprintf("task-%d", t),
		Priority:    priorities[t-1],
		Rate:        5,
		MinAccuracy: accuracies[t-1],
		MaxLatency:  latencies[t-1] * time.Millisecond,
		InputBits:   350e3,
		SNRdB:       20,
	}, nil
}

// SmallScenario builds the Table-IV small-scale instance with the first T
// of the five tasks (T ∈ 1..5): λ = 5 req/s, A = [0.9, 0.8, 0.7, 0.6,
// 0.5], L = [200..600] ms, p = [0.8..0.4], R = 50 RBs, C = 2.5 s, M = 8
// GB, Ct = 1000 s, β = 350 Kb, B = 0.35 Mb/s, α = 0.5.
func SmallScenario(tasks int) (*core.Instance, error) {
	if tasks < 1 || tasks > 5 {
		return nil, fmt.Errorf("workload: small scenario supports 1..5 tasks, got %d", tasks)
	}
	params := SmallCatalogParams()
	in := &core.Instance{
		Blocks: make(map[string]core.BlockSpec),
		Res: core.Resources{
			RBs:                50,
			ComputeSeconds:     2.5,
			MemoryGB:           8,
			TrainBudgetSeconds: 1000,
			Capacity:           radio.PaperRate(),
		},
		Alpha: 0.5,
	}
	for t := 0; t < tasks; t++ {
		task, err := SmallTask(t + 1)
		if err != nil {
			return nil, err
		}
		task.Paths = params.BuildPaths(in.Blocks, task.ID, t)
		in.Tasks = append(in.Tasks, task)
	}
	if err := in.Validate(); err != nil {
		return nil, fmt.Errorf("workload: small scenario: %w", err)
	}
	return in, nil
}

// LargeScenario builds the Table-IV large-scale instance: 20 tasks with
// p_τ = 1 − 0.05(τ−1), A_τ = 0.8 − 0.015τ, L_τ = 200 + 20τ ms, the given
// load's request rate, R = 100 RBs, C = 10 s, M = 16 GB, Ct = 1000 s.
func LargeScenario(load Load) (*core.Instance, error) {
	rate, err := load.Rate()
	if err != nil {
		return nil, err
	}
	params := LargeCatalogParams()
	in := &core.Instance{
		Blocks: make(map[string]core.BlockSpec),
		Res: core.Resources{
			RBs:                100,
			ComputeSeconds:     10,
			MemoryGB:           16,
			TrainBudgetSeconds: 1000,
			Capacity:           radio.PaperRate(),
		},
		Alpha: 0.5,
	}
	const tasks = 20
	for t := 1; t <= tasks; t++ {
		id := fmt.Sprintf("task-%d", t)
		in.Tasks = append(in.Tasks, core.Task{
			ID:          id,
			Priority:    1 - 0.05*float64(t-1),
			Rate:        rate,
			MinAccuracy: 0.8 - 0.015*float64(t),
			MaxLatency:  time.Duration(200+20*t) * time.Millisecond,
			InputBits:   350e3,
			SNRdB:       20,
			Paths:       params.BuildPaths(in.Blocks, id, t-1),
		})
	}
	if err := in.Validate(); err != nil {
		return nil, fmt.Errorf("workload: large scenario: %w", err)
	}
	return in, nil
}
