package workload

import (
	"testing"

	"offloadnn/internal/core"
)

func TestSmallScenarioMatchesTableIV(t *testing.T) {
	in, err := SmallScenario(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(in.Tasks) != 5 {
		t.Fatalf("%d tasks, want 5", len(in.Tasks))
	}
	if in.Res.RBs != 50 || in.Res.ComputeSeconds != 2.5 || in.Res.MemoryGB != 8 ||
		in.Res.TrainBudgetSeconds != 1000 || in.Alpha != 0.5 {
		t.Fatalf("resources %+v do not match Table IV", in.Res)
	}
	wantA := []float64{0.9, 0.8, 0.7, 0.6, 0.5}
	wantP := []float64{0.8, 0.7, 0.6, 0.5, 0.4}
	for i, task := range in.Tasks {
		if task.Rate != 5 {
			t.Fatalf("task %d rate %v, want 5", i, task.Rate)
		}
		if task.MinAccuracy != wantA[i] {
			t.Fatalf("task %d accuracy %v, want %v", i, task.MinAccuracy, wantA[i])
		}
		if task.Priority != wantP[i] {
			t.Fatalf("task %d priority %v, want %v", i, task.Priority, wantP[i])
		}
		wantL := int64(200+100*i) * 1e6
		if task.MaxLatency.Nanoseconds() != wantL {
			t.Fatalf("task %d latency %v", i, task.MaxLatency)
		}
		if len(task.Paths) != 15 { // |D|=3 × |Π|=5
			t.Fatalf("task %d has %d paths, want 15", i, len(task.Paths))
		}
		if task.InputBits != 350e3 {
			t.Fatalf("task %d β = %v, want 350 Kb", i, task.InputBits)
		}
	}
	if _, err := SmallScenario(0); err == nil {
		t.Fatal("0 tasks should be rejected")
	}
	if _, err := SmallScenario(6); err == nil {
		t.Fatal("6 tasks should be rejected")
	}
}

func TestLargeScenarioMatchesTableIV(t *testing.T) {
	in, err := LargeScenario(LoadMedium)
	if err != nil {
		t.Fatal(err)
	}
	if len(in.Tasks) != 20 {
		t.Fatalf("%d tasks, want 20", len(in.Tasks))
	}
	if in.Res.RBs != 100 || in.Res.ComputeSeconds != 10 || in.Res.MemoryGB != 16 {
		t.Fatalf("resources %+v do not match Table IV", in.Res)
	}
	for i, task := range in.Tasks {
		tau := float64(i + 1)
		if task.Rate != 5 {
			t.Fatalf("task %d rate %v at medium load", i, task.Rate)
		}
		if want := 1 - 0.05*(tau-1); task.Priority != want {
			t.Fatalf("task %d priority %v, want %v", i, task.Priority, want)
		}
		if want := 0.8 - 0.015*tau; task.MinAccuracy != want {
			t.Fatalf("task %d accuracy %v, want %v", i, task.MinAccuracy, want)
		}
		if len(task.Paths) != 1250 { // |D|=125 × |Π|=10
			t.Fatalf("task %d has %d paths, want 1250", i, len(task.Paths))
		}
	}
	low, _ := LargeScenario(LoadLow)
	high, _ := LargeScenario(LoadHigh)
	if low.Tasks[0].Rate != 2.5 || high.Tasks[0].Rate != 7.5 {
		t.Fatalf("load rates: low %v, high %v", low.Tasks[0].Rate, high.Tasks[0].Rate)
	}
	if _, err := LargeScenario(Load(9)); err == nil {
		t.Fatal("unknown load should error")
	}
}

func TestCatalogBlockSharingAcrossTasks(t *testing.T) {
	in, err := SmallScenario(3)
	if err != nil {
		t.Fatal(err)
	}
	// Base blocks are shared across tasks: the catalog should contain one
	// base block per stage (plus pruned variants), not per task.
	baseCount := 0
	ftByTask := map[string]int{}
	for id := range in.Blocks {
		switch {
		case len(id) >= 4 && id[:4] == "base":
			baseCount++
		case len(id) >= 2 && id[:2] == "ft":
			ftByTask[id[3:9]]++ // "ft/task-N" prefix region
		}
	}
	if baseCount == 0 || baseCount > 8 {
		t.Fatalf("base block count %d, want 1..8 (4 stages × ≤2 variants)", baseCount)
	}
	if len(ftByTask) == 0 {
		t.Fatal("no task-specific fine-tuned blocks generated")
	}
}

func TestCatalogPrunedCheaper(t *testing.T) {
	in, err := SmallScenario(1)
	if err != nil {
		t.Fatal(err)
	}
	for stage := 1; stage <= 4; stage++ {
		full, okF := in.Blocks[SmallCatalogParams().baseBlockID(stage, false)]
		pruned, okP := in.Blocks[SmallCatalogParams().baseBlockID(stage, true)]
		if !okF || !okP {
			continue
		}
		if pruned.ComputeSeconds >= full.ComputeSeconds {
			t.Fatalf("stage %d pruned compute %v >= full %v", stage, pruned.ComputeSeconds, full.ComputeSeconds)
		}
		if pruned.MemoryGB >= full.MemoryGB {
			t.Fatalf("stage %d pruned memory %v >= full %v", stage, pruned.MemoryGB, full.MemoryGB)
		}
	}
}

func TestCatalogAccuracyStructure(t *testing.T) {
	p := SmallCatalogParams()
	// Fully fine-tuned unpruned ≈ base accuracy.
	top := p.accuracy(0, 0, 0, pathShape{})
	if top < p.BaseAccuracy-0.011 || top > p.BaseAccuracy+0.011 {
		t.Fatalf("full path accuracy %v, want ≈ %v", top, p.BaseAccuracy)
	}
	// A path whose final stage is shared loses the big penalty.
	generic := p.accuracy(0, 0, 0, pathShape{sharedPrefix: 4})
	if generic > p.BaseAccuracy-p.SharedStage4Penalty+0.05 {
		t.Fatalf("generic-final-stage accuracy %v too high", generic)
	}
	// Pruning monotonically reduces accuracy.
	pr := p.accuracy(0, 0, 0, pathShape{ftPruned: true})
	if pr >= top+0.021 {
		t.Fatalf("pruned accuracy %v not below full %v (beyond jitter)", pr, top)
	}
}

func TestScenarioDeterminism(t *testing.T) {
	a, err := SmallScenario(3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SmallScenario(3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Tasks {
		for j := range a.Tasks[i].Paths {
			if a.Tasks[i].Paths[j].Accuracy != b.Tasks[i].Paths[j].Accuracy {
				t.Fatal("scenario generation is not deterministic")
			}
		}
	}
}

func TestSmallScenarioSolvesWithFullAdmission(t *testing.T) {
	// Paper Fig. 8: all five tasks are fully admitted in the small scenario.
	in, err := SmallScenario(5)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := core.SolveOffloaDNN(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Check(sol.Assignments); err != nil {
		t.Fatal(err)
	}
	if sol.Breakdown.FullyAdmittedTasks != 5 {
		t.Fatalf("fully admitted %d/5", sol.Breakdown.FullyAdmittedTasks)
	}
	// Fig. 7: memory usage stays well below the budget (paper: ≤ 64%).
	if sol.Breakdown.MemoryGB > 0.64*in.Res.MemoryGB {
		t.Fatalf("memory %v exceeds 64%% of %v", sol.Breakdown.MemoryGB, in.Res.MemoryGB)
	}
}

func TestHeterogeneousScenarioTwoFamilies(t *testing.T) {
	in, err := HeterogeneousScenario(LoadMedium)
	if err != nil {
		t.Fatal(err)
	}
	if len(in.Tasks) != 20 {
		t.Fatalf("%d tasks, want 20", len(in.Tasks))
	}
	// 85 ResNet + 40 lite DNNs × 10 paths each.
	if got := len(in.Tasks[0].Paths); got != 1250 {
		t.Fatalf("task has %d paths, want 1250", got)
	}
	families := map[string]bool{}
	for _, p := range in.Tasks[0].Paths {
		if len(p.DNN) >= 5 && p.DNN[:5] == "lite-" {
			families["lite"] = true
		} else {
			families["resnet"] = true
		}
	}
	if !families["lite"] || !families["resnet"] {
		t.Fatalf("catalog families %v, want both", families)
	}
	sol, err := core.SolveOffloaDNN(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Check(sol.Assignments); err != nil {
		t.Fatal(err)
	}
	// The lite family clears every accuracy floor here, so the heuristic
	// must exploit it for at least some tasks and beat the ResNet-only
	// catalog on compute.
	single, err := LargeScenario(LoadMedium)
	if err != nil {
		t.Fatal(err)
	}
	base, err := core.SolveOffloaDNN(single)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Breakdown.ComputeUsage >= base.Breakdown.ComputeUsage {
		t.Fatalf("hetero compute %v not below resnet-only %v",
			sol.Breakdown.ComputeUsage, base.Breakdown.ComputeUsage)
	}
}

func TestHeterogeneousAccuracyFloorPinsToResNet(t *testing.T) {
	in, err := HeterogeneousScenario(LoadLow)
	if err != nil {
		t.Fatal(err)
	}
	// Raise task 1's floor above the lite ceiling (0.89): it must be
	// served by a ResNet path or rejected, never by a lite path.
	in.Tasks[0].MinAccuracy = 0.9
	sol, err := core.SolveOffloaDNN(in)
	if err != nil {
		t.Fatal(err)
	}
	a := sol.Assignments[0]
	if a.Admitted() && len(a.Path.DNN) >= 5 && a.Path.DNN[:5] == "lite-" {
		t.Fatalf("accuracy-0.9 task served by lite path %s (acc %v)", a.Path.DNN, a.Path.Accuracy)
	}
}
