// Package offloadnn is the public API of the OffloaDNN reproduction: a
// framework for scalable offloading of computer-vision DNN inference
// tasks to an edge server, reproducing "OffloaDNN: Shaping DNNs for
// Scalable Offloading of Computer Vision Tasks at the Edge" (ICDCS 2024).
//
// The framework jointly decides (i) which offloaded tasks to admit and at
// what fraction of their request rate, (ii) which dynamic DNN structure —
// a path of shareable, fine-tunable, prunable layer-blocks — serves each
// task, and (iii) how many radio resource blocks each task's slice gets,
// minimizing the DOT objective under memory, compute, radio, accuracy and
// latency constraints.
//
// Basic use:
//
//	in, _ := offloadnn.SmallScenario(5)        // or build an Instance by hand
//	sol, _ := offloadnn.Solve(ctx, in)         // the OffloaDNN heuristic
//	for _, a := range sol.Assignments { ... }  // per-task z, path, RBs
//
// Solve takes functional options selecting a solver tier and its knobs:
//
//	offloadnn.Solve(ctx, in)                                  // auto: heuristic, sharded at scale
//	offloadnn.Solve(ctx, in, offloadnn.WithTier(offloadnn.TierOptimal))
//	offloadnn.Solve(ctx, in, offloadnn.WithTier(offloadnn.TierApprox))
//	offloadnn.Solve(ctx, in, offloadnn.WithShards(1))         // force an unsharded solve
//
// The exhaustive benchmark solver, the SEM-O-RAN baseline, the edge
// emulator and the experiment drivers for every figure and table of the
// paper are re-exported below.
package offloadnn

import (
	"context"
	"time"

	"offloadnn/internal/core"
	"offloadnn/internal/edge"
	"offloadnn/internal/exec"
	"offloadnn/internal/experiments"
	"offloadnn/internal/radio"
	"offloadnn/internal/semoran"
	"offloadnn/internal/serve"
	"offloadnn/internal/workload"
)

// Sentinel errors of the solver layer. Match them with errors.Is: every
// infeasibility reported by Solve, SolveOptimal, Check or a SolverSession
// wraps ErrInfeasible; the two named causes additionally identify why.
var (
	// ErrInfeasible is the root of the infeasibility hierarchy: the
	// instance admits no solution, or a candidate violates a constraint.
	ErrInfeasible = core.ErrInfeasible
	// ErrNoFeasiblePath reports that some task has no (path × quality)
	// decision surviving the memory walk — wraps ErrInfeasible.
	ErrNoFeasiblePath = core.ErrNoFeasiblePath
	// ErrOverCapacity reports a memory/compute/radio capacity violation
	// found by Check — wraps ErrInfeasible.
	ErrOverCapacity = core.ErrOverCapacity
)

// Core DOT problem types.
type (
	// Instance is a complete DOT problem: tasks, block catalog, resource
	// pools, and the admission/resource trade-off weight α.
	Instance = core.Instance
	// Task is an inference task with priority, rate, accuracy and
	// latency requirements, input size and candidate paths.
	Task = core.Task
	// BlockSpec is an experimentally characterized DNN layer-block.
	BlockSpec = core.BlockSpec
	// PathSpec is a candidate execution: a block sequence with attained
	// accuracy.
	PathSpec = core.PathSpec
	// Resources is the edge/radio capacity pool.
	Resources = core.Resources
	// Assignment is the per-task solver output: path, admission ratio z,
	// and RB allocation r.
	Assignment = core.Assignment
	// Solution is a solved instance with cost breakdown.
	Solution = core.Solution
	// Breakdown decomposes a solution's objective and resource usage.
	Breakdown = core.Breakdown
	// OptimalStats reports the exhaustive solver's search effort.
	OptimalStats = core.OptimalStats
	// Tree is the weighted-tree model of the DOT solution space.
	Tree = core.Tree
)

// Radio substrate types.
type (
	// CapacityModel maps SNR to per-RB throughput B(σ).
	CapacityModel = radio.CapacityModel
	// FixedRate is the paper's constant-rate capacity model.
	FixedRate = radio.FixedRate
	// CQITable is the LTE CQI-based capacity model.
	CQITable = radio.CQITable
)

// Edge emulation types.
type (
	// Controller implements the Fig. 4 admission workflow.
	Controller = edge.Controller
	// Deployment is an admission round's outcome.
	Deployment = edge.Deployment
	// Emulator drives admitted tasks through radio and compute to
	// measure end-to-end latency (the Colosseum-substitute experiment).
	Emulator = edge.Emulator
	// EmulatorConfig tunes an emulation run.
	EmulatorConfig = edge.EmulatorConfig
	// EmulationResult aggregates per-task latency traces.
	EmulationResult = edge.Result
)

// Baseline types.
type (
	// SEMORANConfig parameterizes the SEM-O-RAN baseline.
	SEMORANConfig = semoran.Config
	// SEMORANReport is the baseline's solution.
	SEMORANReport = semoran.Report
)

// Load is the large-scenario request-rate level.
type Load = workload.Load

// Load levels of the Table-IV large scenario.
const (
	LoadLow    = workload.LoadLow
	LoadMedium = workload.LoadMedium
	LoadHigh   = workload.LoadHigh
)

// Solver tiers behind the unified Solve API.
type (
	// Tier identifies a solver tier: the exact OffloaDNN heuristic
	// (optionally sharded by priority band), the exhaustive optimal
	// search, or the approximate admission tier.
	Tier = core.Tier
	// SolverSpec is the resolved configuration of a Solve call: tier,
	// worker and shard counts, timeout, and heuristic ablation knobs.
	SolverSpec = core.SolverSpec
	// TierRegret quantifies a candidate tier's solution-quality loss
	// against a reference tier on one instance.
	TierRegret = core.TierRegret
)

// Solver tiers for WithTier.
const (
	// TierAuto picks for you: the exact heuristic, sharded by priority
	// band once the task count warrants it.
	TierAuto = core.TierAuto
	// TierHeuristic is the polynomial-time OffloaDNN heuristic.
	TierHeuristic = core.TierHeuristic
	// TierOptimal is the exhaustive (exponential) benchmark solver.
	TierOptimal = core.TierOptimal
	// TierApprox is the approximate admission tier: score-based path
	// ranking with greedy budget packing — linear time, bounded regret.
	TierApprox = core.TierApprox
)

// SolveOption configures a Solve call.
type SolveOption func(*SolverSpec)

// WithTier selects the solver tier (default TierAuto).
func WithTier(t Tier) SolveOption { return func(s *SolverSpec) { s.Tier = t } }

// WithWorkers bounds the goroutines a parallel tier may use, the
// caller's included (<= 0 uses the tensor pool's parallelism).
func WithWorkers(n int) SolveOption { return func(s *SolverSpec) { s.Workers = n } }

// WithShards sets the heuristic tier's priority-band shard count: 1
// forces a serial (unsharded) solve, 0 (the default) picks
// automatically from the task count, >= 2 forces that many bands.
func WithShards(n int) SolveOption { return func(s *SolverSpec) { s.Shards = n } }

// WithTimeout bounds the solve independent of the caller's context.
func WithTimeout(d time.Duration) SolveOption { return func(s *SolverSpec) { s.Timeout = d } }

// WithHeuristic applies ablation knobs (clique ordering, binary
// admission) to the heuristic tier.
func WithHeuristic(cfg HeuristicConfig) SolveOption {
	return func(s *SolverSpec) { s.Heuristic = cfg }
}

// WithSpec replaces the whole spec; later options still apply on top.
func WithSpec(spec SolverSpec) SolveOption { return func(s *SolverSpec) { *s = spec } }

// Solve solves a DOT instance. It is the single solver entry point:
// options select the tier (exact heuristic, sharded parallel heuristic,
// exhaustive optimal, approximate admission) and its knobs; the default
// is TierAuto — the exact heuristic, sharded by priority band once the
// task count warrants it. The returned Solution records the tier and
// shard count that produced it, and Solution.Stats carries the search
// statistics of optimal-tier solves.
//
// The former Solve(in)/SolveCtx/SolveOptimal/SolveOptimalCtx/
// SolveOptimalParallel/SolveOptimalParallelCtx/SolveConfigured entry
// points are thin deprecated wrappers over this function.
func Solve(ctx context.Context, in *Instance, opts ...SolveOption) (*Solution, error) {
	var spec SolverSpec
	for _, o := range opts {
		o(&spec)
	}
	return core.SolveSpec(ctx, in, spec)
}

// CompareTiers solves the instance with a reference and a candidate
// spec, verifies both solutions against every DOT constraint, and
// reports the candidate's regret — the harness bounding the approximate
// tier's weighted-priority loss against the exact heuristic.
func CompareTiers(ctx context.Context, in *Instance, ref, cand SolverSpec) (*TierRegret, error) {
	return core.CompareTiers(ctx, in, ref, cand)
}

// SolveCtx runs the serial (unsharded) OffloaDNN heuristic.
//
// Deprecated: use Solve(ctx, in, WithShards(1)), or plain Solve(ctx, in)
// to let large instances shard.
func SolveCtx(ctx context.Context, in *Instance) (*Solution, error) {
	return Solve(ctx, in, WithTier(TierHeuristic), WithShards(1))
}

// SolveOptimal exhaustively searches every tree branch — exponential in
// the number of tasks; the benchmark for small instances.
//
// Deprecated: use Solve(ctx, in, WithTier(TierOptimal), WithWorkers(1));
// the search statistics are on Solution.Stats.
func SolveOptimal(in *Instance) (*Solution, *OptimalStats, error) {
	sol, err := Solve(context.Background(), in, WithTier(TierOptimal), WithWorkers(1))
	if err != nil {
		return nil, nil, err
	}
	return sol, sol.Stats, nil
}

// SolveOptimalCtx is SolveOptimal with cancellation.
//
// Deprecated: use Solve(ctx, in, WithTier(TierOptimal), WithWorkers(1));
// the search statistics are on Solution.Stats.
func SolveOptimalCtx(ctx context.Context, in *Instance) (*Solution, *OptimalStats, error) {
	sol, err := Solve(ctx, in, WithTier(TierOptimal), WithWorkers(1))
	if err != nil {
		return nil, nil, err
	}
	return sol, sol.Stats, nil
}

// SolveSEMORAN runs the SEM-O-RAN baseline: binary admission maximizing
// total task value, full unshared DNNs, semantic input compression.
func SolveSEMORAN(in *Instance, cfg SEMORANConfig) (*SEMORANReport, error) {
	return semoran.Solve(in, cfg)
}

// DefaultSEMORANConfig returns the baseline's default compression ladder.
func DefaultSEMORANConfig() SEMORANConfig { return semoran.DefaultConfig() }

// Check verifies every DOT constraint for a set of assignments.
func Check(in *Instance, assignments []Assignment) error { return in.Check(assignments) }

// SmallScenario builds the paper's Table-IV small-scale instance with
// 1..5 tasks (3 DNNs × 5 paths per task).
func SmallScenario(tasks int) (*Instance, error) { return workload.SmallScenario(tasks) }

// ScaleScenario builds a T-task instance for the solver-scale
// experiments (1k–10k tasks): the small catalog's path grid per task
// with deterministically jittered request-side fields and a resource
// pool growing linearly with T, so contention stays meaningful at every
// scale.
func ScaleScenario(tasks int) (*Instance, error) { return workload.ScaleScenario(tasks) }

// LargeScenario builds the paper's Table-IV large-scale instance: 20
// tasks, 125 DNNs × 10 paths, at the given request-rate load.
func LargeScenario(load Load) (*Instance, error) { return workload.LargeScenario(load) }

// PaperCapacity returns the Table-IV fixed per-RB rate (0.35 Mb/s).
func PaperCapacity() FixedRate { return radio.PaperRate() }

// NewController builds an edge controller over the given resource pools.
func NewController(res Resources) *Controller { return edge.NewController(res) }

// NewEmulator binds a deployment to an emulation configuration.
func NewEmulator(in *Instance, dep *Deployment, cfg EmulatorConfig) (*Emulator, error) {
	return edge.NewEmulator(in, dep, cfg)
}

// DefaultEmulatorConfig returns a 20-second emulation with realistic
// jitter.
func DefaultEmulatorConfig() EmulatorConfig { return edge.DefaultEmulatorConfig() }

// Experiment is a regenerator for one of the paper's tables or figures.
type Experiment = experiments.Experiment

// ExperimentOptions tunes experiment execution.
type ExperimentOptions = experiments.Options

// Experiments returns the full per-figure/per-table experiment suite.
func Experiments() []Experiment { return experiments.All() }

// ExperimentByID looks up one experiment (e.g., "fig9").
func ExperimentByID(id string) (Experiment, error) { return experiments.ByID(id) }

// Quality and ablation extensions.
type (
	// QualityLevel is one input-quality option q ∈ Q_τ of the DOT
	// formulation: fewer bits per image at an accuracy cost.
	QualityLevel = core.QualityLevel
	// HeuristicConfig parameterizes OffloaDNN ablation variants.
	HeuristicConfig = core.HeuristicConfig
	// CliqueOrder selects the clique vertex ordering.
	CliqueOrder = core.CliqueOrder
	// Repository is the edge's persistent DNN repository (Fig. 4).
	Repository = edge.Repository
)

// Clique orderings for SolveConfigured.
const (
	OrderCompute  = core.OrderCompute
	OrderMemory   = core.OrderMemory
	OrderAccuracy = core.OrderAccuracy
	OrderNone     = core.OrderNone
)

// SolveConfigured runs an OffloaDNN ablation variant (clique ordering,
// binary admission), serially.
//
// Deprecated: use Solve(ctx, in, WithHeuristic(cfg), WithShards(1)).
func SolveConfigured(in *Instance, cfg HeuristicConfig) (*Solution, error) {
	return Solve(context.Background(), in, WithTier(TierHeuristic), WithHeuristic(cfg), WithShards(1))
}

// PrivatizeBlocks returns a copy of the instance with all cross-task
// block sharing disabled (the sharing ablation).
func PrivatizeBlocks(in *Instance) *Instance { return core.PrivatizeBlocks(in) }

// HeterogeneousScenario builds the two-family extension of the large
// scenario (ResNet-18 plus a MobileNetV2-class lite catalog).
func HeterogeneousScenario(load Load) (*Instance, error) {
	return workload.HeterogeneousScenario(load)
}

// NewRepository creates a DNN repository; dir may be empty for a
// memory-only store.
func NewRepository(dir string) *Repository { return edge.NewRepository(dir) }

// Online serving types (the edgeserve daemon as a library).
type (
	// EdgeServer is the online serving daemon: task registry, debounced
	// epoch re-solver with atomic deployment swap, token-bucket admission
	// gates at z·λ, and an HTTP API (tasks, offload, healthz, metrics).
	EdgeServer = serve.Server
	// EdgeServerConfig parameterizes an EdgeServer.
	EdgeServerConfig = serve.Config
	// ServingEpoch is one published pass of the Fig. 4 loop.
	ServingEpoch = serve.Epoch
	// ChurnEvent is one task arrival/departure in a serving timeline.
	ChurnEvent = workload.ChurnEvent
	// ChurnParams parameterizes ChurnTimeline.
	ChurnParams = workload.ChurnParams
)

// NewEdgeServer starts a serving daemon (its epoch re-solver goroutine
// runs until Close). Serve it with net/http: it implements http.Handler.
func NewEdgeServer(cfg EdgeServerConfig) (*EdgeServer, error) { return serve.New(cfg) }

// Execution-layer types: the pluggable backend admitted offloads run
// through. Every published epoch is installed into the configured
// backend atomically with the deployment swap.
type (
	// ExecBackend is the execution-layer interface: Install an epoch's
	// deployment, Infer admitted inputs under it.
	ExecBackend = exec.Backend
	// ExecPlan is one epoch's deployment handed to a backend.
	ExecPlan = exec.Plan
	// ExecRequest is one admitted offload handed to a backend: task,
	// input tensor and completion deadline (zero time = no deadline).
	ExecRequest = exec.Request
	// ExecOutput is the result of one executed offload (logits, argmax,
	// batch size, measured latency).
	ExecOutput = exec.Output
	// RealBackend assembles tensor-backed models per deployed path,
	// instantiating shared blocks exactly once and batching admitted
	// requests through dnn ForwardBatch.
	RealBackend = exec.Real
	// RealBackendConfig parameterizes a RealBackend.
	RealBackendConfig = exec.RealConfig
	// SimulatedBackend answers offloads from the deployment's planned
	// cost model (the same arithmetic the emulator uses).
	SimulatedBackend = exec.Simulated
	// SimulatedBackendConfig parameterizes a SimulatedBackend.
	SimulatedBackendConfig = exec.SimulatedConfig
)

// NewRealBackend constructs the tensor-backed execution backend; wire it
// into EdgeServerConfig.Backend for real inference behind /v1/offload.
func NewRealBackend(cfg RealBackendConfig) (*RealBackend, error) { return exec.NewReal(cfg) }

// NewSimulatedBackend constructs the cost-model execution backend (the
// EdgeServer default).
func NewSimulatedBackend(cfg SimulatedBackendConfig) *SimulatedBackend {
	return exec.NewSimulated(cfg)
}

// ChurnTimeline derives a deterministic register/deregister schedule
// over the Table-IV small-scenario tasks for driving an EdgeServer.
func ChurnTimeline(p ChurnParams) ([]ChurnEvent, error) { return workload.ChurnTimeline(p) }

// SolveOptimalParallel is the exhaustive solver with the first tree layer
// fanned out over a bounded worker pool (workers ≤ 0 = NumCPU).
//
// Deprecated: use Solve(ctx, in, WithTier(TierOptimal),
// WithWorkers(workers)); the search statistics are on Solution.Stats.
func SolveOptimalParallel(in *Instance, workers int) (*Solution, *OptimalStats, error) {
	return SolveOptimalParallelCtx(context.Background(), in, workers)
}

// SolveOptimalParallelCtx is SolveOptimalParallel with cancellation.
//
// Deprecated: use Solve(ctx, in, WithTier(TierOptimal),
// WithWorkers(workers)); the search statistics are on Solution.Stats.
func SolveOptimalParallelCtx(ctx context.Context, in *Instance, workers int) (*Solution, *OptimalStats, error) {
	if workers == 1 {
		// The bounded pool with one worker explores the same tree in the
		// same order as the serial DFS; route it there directly.
		workers = 0
	}
	sol, err := Solve(ctx, in, WithTier(TierOptimal), WithWorkers(workers))
	if err != nil {
		return nil, nil, err
	}
	return sol, sol.Stats, nil
}

// Incremental solving types.
type (
	// SolverSession is an incremental solver for serving loops: it caches
	// the weighted tree across epochs, consumes task deltas instead of
	// whole instances, and warm-starts allocations from the previous
	// epoch. Resolve produces the same solution Solve computes from
	// scratch on the equivalent instance.
	SolverSession = core.SolverSession
	// TaskDelta is the churn between two epochs: task adds, removals,
	// rate updates, and new blocks.
	TaskDelta = core.TaskDelta
	// SessionStats counts a session's cache hits/misses and warm starts.
	SessionStats = core.SessionStats
)

// NewSolverSession validates the instance and prepares an incremental
// session over it. Call Resolve(ctx, delta) once per epoch; a zero delta
// re-solves the unchanged task set.
func NewSolverSession(in *Instance) (*SolverSession, error) {
	return core.NewSolverSession(in)
}

// BuildTree constructs the weighted-tree model of an instance's solution
// space (cliques per task, sorted by inference compute time).
func BuildTree(in *Instance) (*Tree, error) { return core.BuildTree(in) }
