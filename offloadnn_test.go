package offloadnn

import (
	"context"
	"testing"
	"time"
)

func TestPublicAPISolveSmallScenario(t *testing.T) {
	in, err := SmallScenario(3)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := Solve(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(in, sol.Assignments); err != nil {
		t.Fatal(err)
	}
	if sol.Breakdown.AdmittedTasks != 3 {
		t.Fatalf("admitted %d/3", sol.Breakdown.AdmittedTasks)
	}
}

func TestPublicAPIOptimalAndBaseline(t *testing.T) {
	in, err := SmallScenario(2)
	if err != nil {
		t.Fatal(err)
	}
	opt, stats, err := SolveOptimal(in)
	if err != nil {
		t.Fatal(err)
	}
	if stats.BranchesExplored == 0 {
		t.Fatal("no branches explored")
	}
	h, err := Solve(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Cost > h.Cost+1e-9 {
		t.Fatalf("optimum %v worse than heuristic %v", opt.Cost, h.Cost)
	}
	rep, err := SolveSEMORAN(in, DefaultSEMORANConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.AdmittedTasks == 0 {
		t.Fatal("baseline admitted nothing")
	}
}

func TestPublicAPIHandBuiltInstance(t *testing.T) {
	in := &Instance{
		Blocks: map[string]BlockSpec{
			"backbone": {ID: "backbone", ComputeSeconds: 0.004, MemoryGB: 0.5},
			"head":     {ID: "head", ComputeSeconds: 0.002, MemoryGB: 0.3, TrainSeconds: 50},
		},
		Res: Resources{
			RBs: 20, ComputeSeconds: 1, MemoryGB: 4, TrainBudgetSeconds: 500,
			Capacity: PaperCapacity(),
		},
		Alpha: 0.5,
		Tasks: []Task{{
			ID: "detect-cars", Priority: 0.9, Rate: 4, MinAccuracy: 0.7,
			MaxLatency: 400 * time.Millisecond, InputBits: 350e3, SNRdB: 15,
			Paths: []PathSpec{{
				ID: "full", DNN: "resnet18", Blocks: []string{"backbone", "head"}, Accuracy: 0.85,
			}},
		}},
	}
	sol, err := Solve(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	a := sol.Assignments[0]
	if !a.Admitted() || a.Z < 0.999 {
		t.Fatalf("task not fully admitted: %+v", a)
	}
	if a.RBs <= 0 {
		t.Fatal("no RBs allocated")
	}
}

func TestPublicAPIControllerAndEmulator(t *testing.T) {
	in, err := SmallScenario(2)
	if err != nil {
		t.Fatal(err)
	}
	c := NewController(in.Res)
	dep, err := c.Admit(in.Tasks, in.Blocks, in.Alpha)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultEmulatorConfig()
	cfg.Duration = 3 * time.Second
	em, err := NewEmulator(in, dep, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := em.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.FramesServed == 0 {
		t.Fatal("emulator served nothing")
	}
}

func TestPublicAPIExperiments(t *testing.T) {
	if len(Experiments()) < 10 {
		t.Fatalf("only %d experiments registered", len(Experiments()))
	}
	e, err := ExperimentByID("table1")
	if err != nil {
		t.Fatal(err)
	}
	tables, err := e.Run(ExperimentOptions{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) == 0 {
		t.Fatal("no tables")
	}
}

func TestPublicAPILargeScenarioLoads(t *testing.T) {
	for _, load := range []Load{LoadLow, LoadMedium, LoadHigh} {
		in, err := LargeScenario(load)
		if err != nil {
			t.Fatal(err)
		}
		if len(in.Tasks) != 20 {
			t.Fatalf("load %v: %d tasks", load, len(in.Tasks))
		}
	}
}
