package offloadnn

// Deadline-hit-rate benchmark harness: TestRecordServeBench regenerates
// the checked-in BENCH_serve.json — the deadline-hit-rate × batch
// policy × offered-load matrix behind the EDF-over-FIFO numbers quoted
// in README.md and DESIGN.md §5k. The service cost per batch is pinned
// with the exec.slow chaos point, so the matrix measures scheduling
// policy, not hardware speed.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"testing"
	"time"

	"offloadnn/internal/core"
	"offloadnn/internal/dnn"
	"offloadnn/internal/edge"
	"offloadnn/internal/exec"
	"offloadnn/internal/faultinject"
	"offloadnn/internal/radio"
)

// serveBenchRun is one cell of the recorded policy × load matrix.
type serveBenchRun struct {
	Policy   string  `json:"policy"`
	Load     int     `json:"load"` // burst size funneled into one model
	CostMS   float64 `json:"cost_ms"`
	Hits     int64   `json:"hits"`
	Misses   int64   `json:"misses"`
	ShedLate int64   `json:"shed_late"`
	HitRate  float64 `json:"hit_rate"`
	Seconds  float64 `json:"seconds"`
}

// serveBenchPlan is a single-task, single-path plan: every burst request
// funnels into one model's batching queue.
func serveBenchPlan() *exec.Plan {
	task := core.Task{ID: "t1", Rate: 10, MaxLatency: time.Second, InputBits: 1e5, Priority: 0.5}
	p := &core.PathSpec{ID: "p-t1", DNN: "d", Blocks: []string{"base/s1"}, Accuracy: 0.9}
	return &exec.Plan{
		Epoch:  1,
		Tasks:  []core.Task{task},
		Blocks: map[string]core.BlockSpec{"base/s1": {ID: "base/s1", ComputeSeconds: 0.01}},
		Res: core.Resources{
			RBs: 10, ComputeSeconds: 1, MemoryGB: 10, TrainBudgetSeconds: 1000,
			Capacity: radio.FixedRate{Rate: 1e6},
		},
		Deployment: &edge.Deployment{
			Solution: &core.Solution{Assignments: []core.Assignment{
				{TaskID: "t1", Path: p, Z: 1, RBs: 2},
			}},
			AdmittedRates: map[string]float64{"t1": 10},
		},
	}
}

// runServeBenchCell offers one flash-crowd burst to a single-model
// backend whose per-batch cost is pinned at cost via exec.slow, and
// returns the deadline accounting. Request of urgency rank k carries
// budget (k+1)·cost + 2·cost — satisfiable when served in deadline
// order, blown for the tight ranks when served in arrival order.
func runServeBenchCell(t *testing.T, policy exec.SchedPolicy, load int, cost time.Duration) serveBenchRun {
	t.Helper()
	fi := faultinject.New(1)
	fi.Set(faultinject.PointExecSlow, faultinject.Rule{EveryN: 1, HangFor: cost})
	be, err := exec.NewReal(exec.RealConfig{
		Model: dnn.ResNetConfig{
			InChannels: 3, NumClasses: 4, BaseWidth: 4, StageBlocks: [4]int{1, 1, 1, 1}, Seed: 7,
		},
		BatchSize:  1,
		Sched:      policy,
		QueueDepth: -1,
		Faults:     fi,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer be.Close()
	if err := be.Install(serveBenchPlan()); err != nil {
		t.Fatal(err)
	}
	shape := be.InputShape()
	in := make([]float64, shape[0]*shape[1]*shape[2])
	for i := range in {
		in[i] = float64(i%7) / 7
	}

	start := time.Now()
	errs := make(chan error, load+1)
	// A deadline-free blocker pins the executor; the whole burst arrives
	// during its stall, so intake order is what the policy under test
	// decides to do with a standing queue.
	go func() {
		_, err := be.Infer(context.Background(), exec.Request{TaskID: "t1", Input: in})
		errs <- err
	}()
	for deadline := time.Now().Add(5 * time.Second); fi.Hits(faultinject.PointExecSlow) == 0; {
		if time.Now().After(deadline) {
			t.Fatal("executor never picked up the blocker")
		}
		time.Sleep(100 * time.Microsecond)
	}

	base := time.Now()
	ranks := rand.New(rand.NewSource(int64(load))).Perm(load)
	for _, k := range ranks {
		dl := base.Add(time.Duration(k+2)*cost + 2*cost)
		go func() {
			_, err := be.Infer(context.Background(), exec.Request{TaskID: "t1", Input: in, Deadline: dl})
			errs <- err
		}()
	}
	for i := 0; i < load+1; i++ {
		if err := <-errs; err != nil && !errors.Is(err, exec.ErrLate) {
			t.Fatalf("%v/%d: burst request failed: %v", policy, load, err)
		}
	}
	st := be.Stats()
	run := serveBenchRun{
		Policy:   policy.String(),
		Load:     load,
		CostMS:   float64(cost) / float64(time.Millisecond),
		Hits:     st.DeadlineHits,
		Misses:   st.DeadlineMisses,
		ShedLate: st.ShedLate,
		Seconds:  time.Since(start).Seconds(),
	}
	if carried := run.Hits + run.Misses; carried > 0 {
		run.HitRate = float64(run.Hits) / float64(carried)
	}
	return run
}

// TestRecordServeBench regenerates BENCH_serve.json. Gated behind
// OFFLOADNN_SERVE_BENCH_OUT because the matrix serializes ~1 s of
// pinned batch cost per policy:
//
//	OFFLOADNN_SERVE_BENCH_OUT=BENCH_serve.json go test -run TestRecordServeBench -count=1 .
func TestRecordServeBench(t *testing.T) {
	out := os.Getenv("OFFLOADNN_SERVE_BENCH_OUT")
	if out == "" {
		t.Skip("set OFFLOADNN_SERVE_BENCH_OUT to record the deadline-hit-rate matrix")
	}
	const cost = 15 * time.Millisecond
	var runs []serveBenchRun
	summary := map[string]any{}
	for _, load := range []int{8, 24} {
		var edf, fifo serveBenchRun
		for _, policy := range []exec.SchedPolicy{exec.SchedEDF, exec.SchedFIFO} {
			run := runServeBenchCell(t, policy, load, cost)
			t.Logf("%-4s load=%-3d: hit-rate %.3f (%d/%d, shed %d) in %.2fs",
				run.Policy, run.Load, run.HitRate, run.Hits, run.Hits+run.Misses, run.ShedLate, run.Seconds)
			runs = append(runs, run)
			if policy == exec.SchedEDF {
				edf = run
			} else {
				fifo = run
			}
		}
		// The acceptance property, re-proved at record time: EDF strictly
		// beats the FIFO/fixed-window baseline at equal offered load.
		if edf.HitRate <= fifo.HitRate {
			t.Errorf("load %d: EDF hit-rate %.3f not above FIFO %.3f", load, edf.HitRate, fifo.HitRate)
		}
		summary[fmt.Sprintf("edf_minus_fifo_at_%d", load)] = edf.HitRate - fifo.HitRate
	}

	doc := struct {
		Benchmark string          `json:"benchmark"`
		Runs      []serveBenchRun `json:"runs"`
		Summary   map[string]any  `json:"summary"`
	}{
		Benchmark: "serve_deadline",
		Runs:      runs,
		Summary:   summary,
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
}
