package offloadnn

// Solver-scale benchmark harness: BenchmarkEpochResolve10k times the
// serving-path epoch the 10k-task acceptance bound is about, and
// TestRecordSolverBench regenerates the checked-in BENCH_solver.json —
// the tasks × tier × workers matrix behind the scale numbers quoted in
// README.md and DESIGN.md §5i.

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"testing"
	"time"

	"offloadnn/internal/core"
	"offloadnn/internal/serve"
	"offloadnn/internal/workload"
)

// BenchmarkEpochResolve10k times one full serving-path epoch over the
// 10k-task scale scenario: auto tiering routes the solve to the
// approximate tier, then the deployment swap and gate rebuild publish
// it — the epoch loop edgeserve runs at fleet scale. Compare against
// BenchmarkEpochResolve (20 tasks, exact heuristic).
func BenchmarkEpochResolve10k(b *testing.B) {
	in, err := workload.ScaleScenario(10000)
	if err != nil {
		b.Fatal(err)
	}
	srv, err := serve.New(serve.Config{
		Res:      in.Res,
		Alpha:    in.Alpha,
		Debounce: time.Hour, // keep the background loop out of the measurement
	})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	if _, err := srv.ReplaceTasks(in.Tasks, in.Blocks, nil); err != nil {
		b.Fatal(err)
	}
	if ep := srv.Current(); ep == nil || ep.Tier != core.TierApprox {
		b.Fatalf("10k epoch did not route to the approx tier: %+v", ep)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := srv.ForceResolve(); err != nil {
			b.Fatal(err)
		}
	}
}

// solverBenchRun is one cell of the recorded tasks × tier × workers
// matrix.
type solverBenchRun struct {
	Tasks   int     `json:"tasks"`
	Tier    string  `json:"tier"`
	Workers int     `json:"workers"`
	Shards  int     `json:"shards"`
	Seconds float64 `json:"seconds"`
	// TimedOut marks a run that hit the recorder's deadline cap; its
	// Seconds is a lower bound on the true solve time.
	TimedOut          bool    `json:"timed_out,omitempty"`
	Cost              float64 `json:"cost,omitempty"`
	WeightedAdmission float64 `json:"weighted_admission,omitempty"`
	AdmittedTasks     int     `json:"admitted_tasks,omitempty"`
}

// serialCap bounds the serial heuristic's recorder runs: cubic LP work
// makes the unsharded solve intractable at 10k tasks, and capping it
// keeps the recorder finite while still proving the ≥ 3× sharded
// speedup (the cap itself is the serial lower bound).
const serialCap = 10 * time.Second

// TestRecordSolverBench regenerates BENCH_solver.json. Gated behind
// OFFLOADNN_SOLVER_BENCH_OUT because a full matrix takes ~30 s of
// wall-clock (the serial heuristic alone is ~9 s at 1k tasks):
//
//	OFFLOADNN_SOLVER_BENCH_OUT=BENCH_solver.json go test -run TestRecordSolverBench -count=1 .
func TestRecordSolverBench(t *testing.T) {
	out := os.Getenv("OFFLOADNN_SOLVER_BENCH_OUT")
	if out == "" {
		t.Skip("set OFFLOADNN_SOLVER_BENCH_OUT to record the solver scale matrix")
	}
	type cell struct {
		tasks int
		tier  string
		spec  SolverSpec
	}
	var cells []cell
	for _, tasks := range []int{1000, 10000} {
		cells = append(cells,
			cell{tasks, "serial", SolverSpec{Tier: TierHeuristic, Shards: 1}},
			cell{tasks, "sharded", SolverSpec{Tier: TierHeuristic, Workers: 1}},
			cell{tasks, "sharded", SolverSpec{Tier: TierHeuristic}},
			cell{tasks, "approx", SolverSpec{Tier: TierApprox}},
		)
	}
	runs := make([]solverBenchRun, 0, len(cells))
	for _, c := range cells {
		in, err := ScaleScenario(c.tasks)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), serialCap)
		start := time.Now()
		sol, err := Solve(ctx, in, WithSpec(c.spec))
		elapsed := time.Since(start)
		cancel()
		run := solverBenchRun{
			Tasks:   c.tasks,
			Tier:    c.tier,
			Workers: c.spec.Workers,
			Seconds: elapsed.Seconds(),
		}
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			run.TimedOut = true
		case err != nil:
			t.Fatalf("%d tasks, %s: %v", c.tasks, c.tier, err)
		default:
			run.Shards = sol.Shards
			run.Cost = sol.Cost
			run.WeightedAdmission = sol.Breakdown.WeightedAdmission
			run.AdmittedTasks = sol.Breakdown.AdmittedTasks
		}
		t.Logf("%5d tasks %-7s workers=%d: %v (timed_out=%v)", c.tasks, c.tier, c.spec.Workers, elapsed, run.TimedOut)
		runs = append(runs, run)
	}

	// The headline number: sharded exact vs serial exact at 10k tasks.
	// The serial run hits the cap, so the ratio is a lower bound.
	var serial10k, sharded10k solverBenchRun
	for _, r := range runs {
		switch {
		case r.Tasks == 10000 && r.Tier == "serial":
			serial10k = r
		case r.Tasks == 10000 && r.Tier == "sharded" && r.Workers == 0:
			sharded10k = r
		}
	}
	speedup := serial10k.Seconds / sharded10k.Seconds
	if speedup < 3 {
		t.Errorf("sharded speedup at 10k = %.1fx, want >= 3x", speedup)
	}

	doc := struct {
		Benchmark string           `json:"benchmark"`
		Runs      []solverBenchRun `json:"runs"`
		Summary   map[string]any   `json:"summary"`
	}{
		Benchmark: "solver_scale",
		Runs:      runs,
		Summary: map[string]any{
			"sharded_speedup_at_10k":             speedup,
			"sharded_speedup_at_10k_lower_bound": serial10k.TimedOut,
			"serial_cap_seconds":                 serialCap.Seconds(),
		},
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (sharded speedup at 10k: %.1fx, lower bound: %v)", out, speedup, serial10k.TimedOut)
}
