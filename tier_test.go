package offloadnn_test

import (
	"context"
	"testing"

	offloadnn "offloadnn"
)

// paperLoads are the instances the approximate tier's regret bound is
// accepted against: the small scenario plus all three large-scenario
// request-rate levels.
func paperLoads(t *testing.T) map[string]*offloadnn.Instance {
	t.Helper()
	loads := make(map[string]*offloadnn.Instance, 4)
	small, err := offloadnn.SmallScenario(5)
	if err != nil {
		t.Fatal(err)
	}
	loads["small-5"] = small
	for name, load := range map[string]offloadnn.Load{
		"large-low":    offloadnn.LoadLow,
		"large-medium": offloadnn.LoadMedium,
		"large-high":   offloadnn.LoadHigh,
	} {
		in, err := offloadnn.LargeScenario(load)
		if err != nil {
			t.Fatal(err)
		}
		loads[name] = in
	}
	return loads
}

// TestApproxRegretPaperLoads pins the approximate tier's acceptance
// bound: on every paper load it must retain at least 95% of the exact
// heuristic's weighted admitted priority (Σ z·p).
func TestApproxRegretPaperLoads(t *testing.T) {
	ctx := context.Background()
	for name, in := range paperLoads(t) {
		r, err := offloadnn.CompareTiers(ctx, in,
			offloadnn.SolverSpec{Tier: offloadnn.TierHeuristic, Shards: 1},
			offloadnn.SolverSpec{Tier: offloadnn.TierApprox})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if r.AdmissionRatio < 0.95 {
			t.Errorf("%s: approx admission ratio %.4f < 0.95 (ref %.2f, cand %.2f)",
				name, r.AdmissionRatio, r.RefWeightedAdmission, r.CandWeightedAdmission)
		}
	}
}

func sameSolution(t *testing.T, name string, a, b *offloadnn.Solution) {
	t.Helper()
	if a.Cost != b.Cost {
		t.Fatalf("%s: cost %v != %v", name, a.Cost, b.Cost)
	}
	if len(a.Assignments) != len(b.Assignments) {
		t.Fatalf("%s: %d vs %d assignments", name, len(a.Assignments), len(b.Assignments))
	}
	for i := range a.Assignments {
		x, y := a.Assignments[i], b.Assignments[i]
		if x.TaskID != y.TaskID || x.Path != y.Path || x.Quality != y.Quality || x.Z != y.Z || x.RBs != y.RBs {
			t.Fatalf("%s: assignment %d differs: %+v vs %+v", name, i, x, y)
		}
	}
}

// TestDeprecatedWrappersMatchSolve proves the API redesign is purely a
// re-plumbing: every legacy entry point returns exactly what the
// equivalent Solve(ctx, in, opts...) call does.
func TestDeprecatedWrappersMatchSolve(t *testing.T) {
	ctx := context.Background()
	for name, in := range paperLoads(t) {
		legacy, err := offloadnn.SolveCtx(ctx, in)
		if err != nil {
			t.Fatal(err)
		}
		sol, err := offloadnn.Solve(ctx, in,
			offloadnn.WithTier(offloadnn.TierHeuristic), offloadnn.WithShards(1))
		if err != nil {
			t.Fatal(err)
		}
		sameSolution(t, name+"/SolveCtx", legacy, sol)

		cfgLegacy, err := offloadnn.SolveConfigured(in, offloadnn.HeuristicConfig{BinaryAdmission: true})
		if err != nil {
			t.Fatal(err)
		}
		cfgSol, err := offloadnn.Solve(ctx, in,
			offloadnn.WithTier(offloadnn.TierHeuristic), offloadnn.WithShards(1),
			offloadnn.WithHeuristic(offloadnn.HeuristicConfig{BinaryAdmission: true}))
		if err != nil {
			t.Fatal(err)
		}
		sameSolution(t, name+"/SolveConfigured", cfgLegacy, cfgSol)
	}

	small, err := offloadnn.SmallScenario(3)
	if err != nil {
		t.Fatal(err)
	}
	legacy, legacyStats, err := offloadnn.SolveOptimal(small)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := offloadnn.Solve(ctx, small,
		offloadnn.WithTier(offloadnn.TierOptimal), offloadnn.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	sameSolution(t, "SolveOptimal", legacy, sol)
	if legacyStats == nil || sol.Stats == nil || legacyStats.BranchesExplored != sol.Stats.BranchesExplored {
		t.Fatalf("optimal stats differ: %+v vs %+v", legacyStats, sol.Stats)
	}
}

// TestShardedWorkerEquivalence10k is the scale acceptance bound for the
// sharded heuristic: at 10k tasks the auto-sharded solve must produce a
// bitwise-identical solution whether the bands run on one worker or
// many — parallelism is a scheduling detail, never a results change.
func TestShardedWorkerEquivalence10k(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-task solve")
	}
	ctx := context.Background()
	in, err := offloadnn.ScaleScenario(10000)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := offloadnn.Solve(ctx, in, offloadnn.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	if serial.Shards <= 1 {
		t.Fatalf("10k-task auto solve did not shard (shards=%d)", serial.Shards)
	}
	parallel, err := offloadnn.Solve(ctx, in, offloadnn.WithWorkers(8))
	if err != nil {
		t.Fatal(err)
	}
	if parallel.Shards != serial.Shards {
		t.Fatalf("shard counts differ: %d vs %d", parallel.Shards, serial.Shards)
	}
	sameSolution(t, "10k", serial, parallel)
	if err := offloadnn.Check(in, parallel.Assignments); err != nil {
		t.Fatalf("10k sharded solution infeasible: %v", err)
	}
}
